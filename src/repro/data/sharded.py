"""Sharded, out-of-core dataset access for paper-scale data.

The paper's full dataset — 5000 trajectories × 201 snapshots on 256²
grids — is ~260 GB of velocity fields and cannot live in memory.  This
module streams training windows from a directory of npz shards
(written by :func:`repro.data.save_samples` / the ``generate`` CLI):

* :func:`generate_sharded_dataset` — generate a big dataset directly to
  disk, one shard per chunk of samples, with per-shard RNG streams that
  make the result identical to a single-shot run;
* :class:`ShardedWindowDataset` — iterate ``(X, Y)`` mini-batches of
  temporal-channel windows, holding at most one shard in memory at a
  time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..faults import injection as _faults
from ..faults.policy import RetryPolicy, call_with_retry
from ..tensor import Tensor
from ..utils.artifacts import CheckpointError, verify_manifest
from ..utils.rng import as_generator
from .dataset import make_channel_pairs, stack_fields
from .generation import DataGenConfig
from .io import load_samples, save_samples

__all__ = ["generate_sharded_dataset", "ShardedWindowDataset"]


def _shard_reusable(path: Path, config: DataGenConfig, start: int, stop: int) -> bool:
    """True when ``path`` is a verified shard of exactly this slice.

    Three gates: the integrity manifest must verify (checksum + size —
    a torn shard from a killed run fails here), its recorded config hash
    must match ``config`` (a shard from a different grid/Re/seed must
    not be silently reused), and its sample range must match the slice.
    """
    try:
        manifest = verify_manifest(path, required=True)
    except CheckpointError:
        return False
    return (
        manifest.get("config_hash") == config.config_hash
        and manifest.get("sample_range") == [start, stop]
    )


def generate_sharded_dataset(
    config: DataGenConfig,
    out_dir,
    samples_per_shard: int = 50,
    n_workers: int | None = 1,
    resume: bool = False,
) -> list[Path]:
    """Generate ``config.n_samples`` trajectories into npz shards.

    Shard ``i`` holds samples ``[i·S, (i+1)·S)`` with the exact same RNG
    streams a monolithic :func:`generate_dataset` run would give them, so
    sharding is purely a storage decision.  Returns the shard paths.

    With ``resume=True``, shards that already exist on disk with a
    checksum-verified manifest matching this config and sample range are
    skipped — an interrupted generation run repeats only the shard it
    was killed in, not the hours of solver time before it.
    """
    if samples_per_shard < 1:
        raise ValueError("samples_per_shard must be >= 1")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    # Reproduce the per-sample seeds of generate_dataset, then slice.
    from ..parallel import parallel_map, task_seeds

    entropies = task_seeds(config.seed, config.n_samples)

    paths: list[Path] = []
    for shard_idx, start in enumerate(range(0, config.n_samples, samples_per_shard)):
        stop = min(start + samples_per_shard, config.n_samples)
        path = out_dir / f"shard_{shard_idx:05d}.npz"
        if resume and _shard_reusable(path, config, start, stop):
            paths.append(path)
            continue
        jobs = [(config, entropies[i], i) for i in range(start, stop)]
        shard_samples = parallel_map(
            _shard_worker, jobs, n_workers=n_workers, seed=config.seed
        )
        save_samples(
            path, shard_samples,
            metadata={
                "shard_index": shard_idx, "sample_range": [start, stop],
                "n_samples_total": config.n_samples,
            },
            manifest={
                "config_hash": config.config_hash, "seed": config.seed,
                "extra": {"shard_index": shard_idx, "sample_range": [start, stop]},
            },
        )
        paths.append(path)
    return paths


def _shard_worker(args):
    from .generation import generate_sample

    config, entropy, sample_id = args
    return generate_sample(config, np.random.default_rng(entropy), sample_id)


class ShardedWindowDataset:
    """Stream temporal-channel training windows from npz shards.

    Parameters
    ----------
    shard_paths:
        npz files written by :func:`save_samples` (or the generator
        above).  Order defines the epoch order unless shuffling.
    n_in, n_out, stride, fields:
        Window parameters, as in :func:`make_channel_pairs`.
    batch_size:
        Windows per yielded batch.
    shuffle:
        Shuffle the shard order *and* the windows inside each shard every
        epoch (a standard two-level approximation to a global shuffle that
        never materialises more than one shard).
    rng:
        Seed or generator for the shuffling.
    retry:
        Optional :class:`repro.faults.RetryPolicy` applied to each shard
        read — transient ``OSError``-family failures (flaky network
        filesystems, the usual paper-scale storage) are retried with
        seeded backoff instead of killing a multi-hour epoch.
    """

    def __init__(
        self,
        shard_paths,
        n_in: int = 10,
        n_out: int = 5,
        stride: int | None = None,
        fields: str = "velocity",
        batch_size: int = 8,
        shuffle: bool = True,
        rng=None,
        retry: RetryPolicy | None = None,
    ):
        self.shard_paths = [Path(p) for p in shard_paths]
        if not self.shard_paths:
            raise ValueError("no shards given")
        for p in self.shard_paths:
            if not p.exists():
                raise FileNotFoundError(p)
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.stride = stride
        self.fields = fields
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self._rng = as_generator(rng)
        self.retry = retry

    # ------------------------------------------------------------------
    def _load_shard(self, path: Path):
        if _faults.ACTIVE:
            _faults.fire("data.load_shard", path=str(path))
        return load_samples(path)

    def _shard_windows(self, path: Path) -> tuple[np.ndarray, np.ndarray]:
        if self.retry is not None:
            samples, _ = call_with_retry(
                self._load_shard, path, policy=self.retry, label="data.load_shard"
            )
        else:
            samples, _ = self._load_shard(path)
        data = stack_fields(samples, self.fields)
        return make_channel_pairs(data, n_in=self.n_in, n_out=self.n_out, stride=self.stride)

    def n_windows(self) -> int:
        """Total window count (loads each shard's header once)."""
        total = 0
        for path in self.shard_paths:
            X, _ = self._shard_windows(path)
            total += X.shape[0]
        return total

    def __iter__(self) -> Iterator[tuple[Tensor, Tensor]]:
        order = (
            self._rng.permutation(len(self.shard_paths))
            if self.shuffle
            else np.arange(len(self.shard_paths))
        )
        for shard_idx in order:
            X, Y = self._shard_windows(self.shard_paths[shard_idx])
            idx = self._rng.permutation(len(X)) if self.shuffle else np.arange(len(X))
            for start in range(0, len(X), self.batch_size):
                sel = idx[start : start + self.batch_size]
                yield Tensor(X[sel]), Tensor(Y[sel])

    # ------------------------------------------------------------------
    def fit_normalizer(self, normalizer):
        """Fit a :class:`FieldNormalizer`-style object incrementally.

        Streams the shards to accumulate per-field mean/variance with a
        two-pass-free (sum / sum-of-squares) reduction, then installs the
        statistics on ``normalizer`` and returns it.
        """
        n_fields = normalizer.n_fields
        count = 0
        total = np.zeros(n_fields)
        total_sq = np.zeros(n_fields)
        for path in self.shard_paths:
            X, _ = self._shard_windows(path)
            n_snap = X.shape[1] // n_fields
            per_field = X.reshape(X.shape[0], n_snap, n_fields, -1)
            total += per_field.sum(axis=(0, 1, 3))
            total_sq += (per_field**2).sum(axis=(0, 1, 3))
            count += per_field.shape[0] * per_field.shape[1] * per_field.shape[3]
        if count == 0:
            raise ValueError("no data in shards")
        mean = total / count
        var = np.maximum(total_sq / count - mean**2, 0.0)
        normalizer.mean = mean
        normalizer.std = np.maximum(np.sqrt(var), normalizer.eps)
        if getattr(normalizer, "isotropic", False):
            normalizer.std = np.full_like(
                normalizer.std, float(np.sqrt(np.mean(normalizer.std**2)))
            )
        return normalizer
