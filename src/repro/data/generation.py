"""Dataset generation pipeline (paper Sec. III).

For each sample: draw a random initial condition, warm it up for
``warmup`` convective times so sharp features vanish, reset the clock,
then record velocity and vorticity snapshots every ``sample_interval``
convective times over ``duration`` convective times.  The paper's setup
is 5000 samples on a 256² grid with snapshots every ``0.005 t_c`` up to
``t_c`` (201 snapshots); all of that is configurable here, and samples
fan out over processes with :func:`repro.parallel.parallel_map`.

The solver can be the entropic lattice Boltzmann model (paper-faithful),
or either Navier–Stokes solver (faster on small grids, useful for tests
and the cross-solver experiments).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from .. import obs
from ..lbm import LBMSolver2D, UnitSystem
from ..ns import (
    CompositeForcing,
    FDNSSolver2D,
    KolmogorovForcing,
    LinearDrag,
    RingForcing,
    SpectralNSSolver2D,
    rms_velocity,
    velocity_from_vorticity,
    vorticity_from_velocity,
)
from ..parallel import parallel_map, task_seeds
from ..utils.rng import as_generator
from .initial_conditions import band_limited_vorticity, uniform_random_velocity

__all__ = ["DataGenConfig", "TrajectorySample", "generate_sample", "generate_dataset"]


@dataclass(frozen=True)
class DataGenConfig:
    """Configuration of the trajectory generator.

    Times (``warmup``, ``duration``, ``sample_interval``) are in units of
    the convective time ``t_c = L / U0``.  Defaults are the paper's
    protocol scaled down to a CPU-friendly grid; set ``n=256``,
    ``reynolds=7500`` and ``n_samples=5000`` to match the paper exactly.
    """

    n: int = 64
    reynolds: float = 1000.0
    n_samples: int = 10
    warmup: float = 0.5
    duration: float = 1.0
    sample_interval: float = 0.005
    solver: str = "lbm"  # "lbm" | "spectral" | "fd"
    collision: str = "entropic"
    ic: str = "uniform"  # "uniform" | "band"
    k_peak: float = 6.0
    u0_lattice: float = 0.05
    length: float = 2.0 * np.pi
    seed: int = 0
    # Forced (non-decaying) turbulence — paper Sec. I extension.  Only
    # supported by the Navier-Stokes solvers.
    forcing: str = "none"  # "none" | "kolmogorov" | "ring"
    forcing_amplitude: float = 1.0
    forcing_k: float = 4.0
    forcing_drag: float = 0.1

    def __post_init__(self) -> None:
        if self.solver not in ("lbm", "spectral", "fd"):
            raise ValueError(f"unknown solver {self.solver!r}")
        if self.ic not in ("uniform", "band"):
            raise ValueError(f"unknown initial condition {self.ic!r}")
        if self.sample_interval <= 0 or self.duration < 0 or self.warmup < 0:
            raise ValueError("times must be positive")
        if self.forcing not in ("none", "kolmogorov", "ring"):
            raise ValueError(f"unknown forcing {self.forcing!r}")
        if self.forcing != "none" and self.solver == "lbm":
            raise ValueError("forcing is only supported by the Navier-Stokes solvers")

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def config_hash(self) -> str:
        """Stable hash of the full generation config.

        Recorded in shard integrity manifests, so a resumed generation
        run can prove an existing shard was produced by *this* config
        before skipping it.
        """
        from ..utils.artifacts import stable_hash

        return stable_hash(self.to_dict())

    @property
    def n_snapshots(self) -> int:
        return int(round(self.duration / self.sample_interval)) + 1

    @property
    def convective_time(self) -> float:
        """``t_c`` in physical units (U0 is normalised to 1)."""
        return self.length


@dataclass
class TrajectorySample:
    """One generated trajectory (physical/convective units).

    Attributes
    ----------
    times:
        Snapshot times in units of ``t_c``, starting at 0 (post warm-up).
    vorticity:
        ``(T, n, n)``.
    velocity:
        ``(T, 2, n, n)``.
    reynolds:
        Effective Reynolds number at t = 0 (post warm-up RMS velocity).
    sample_id:
        Index within the generated set.
    """

    times: np.ndarray
    vorticity: np.ndarray
    velocity: np.ndarray
    reynolds: float
    sample_id: int = 0

    @property
    def n_snapshots(self) -> int:
        return self.times.shape[0]

    @property
    def grid_size(self) -> int:
        return self.vorticity.shape[-1]


def _initial_vorticity(config: DataGenConfig, rng: np.random.Generator) -> np.ndarray:
    if config.ic == "uniform":
        u = uniform_random_velocity(config.n, rng, u0=1.0, length=config.length)
        return vorticity_from_velocity(u, config.length)
    return band_limited_vorticity(
        config.n, rng, k_peak=config.k_peak, u0=1.0, length=config.length
    )


def _generate_with_lbm(config: DataGenConfig, rng: np.random.Generator, sample_id: int) -> TrajectorySample:
    units = UnitSystem(
        n=config.n,
        reynolds=config.reynolds,
        length=config.length,
        u0=1.0,
        u0_lattice=config.u0_lattice,
    )
    solver = LBMSolver2D.from_units(units, collision=config.collision)
    omega0 = _initial_vorticity(config, rng)
    u_phys = velocity_from_vorticity(omega0, config.length)
    solver.initialize(units.to_lattice_velocity(u_phys))

    t_c = units.convective_time
    warm_steps = units.steps_for_time(config.warmup * t_c)
    with obs.span("datagen.warmup", steps=warm_steps):
        solver.step(warm_steps)

    interval_steps = units.steps_for_time(config.sample_interval * t_c)
    if interval_steps < 1:
        raise ValueError(
            f"sample_interval {config.sample_interval} t_c is below one lattice step "
            f"({units.steps_per_convective_time:.0f} steps per t_c); refine the grid "
            "or lower u0_lattice"
        )

    n_snap = config.n_snapshots
    times = np.arange(n_snap) * (interval_steps * units.time_scale) / t_c
    vorticity = np.empty((n_snap, config.n, config.n))
    velocity = np.empty((n_snap, 2, config.n, config.n))
    with obs.span("datagen.sampling", snapshots=n_snap):
        for i in range(n_snap):
            if i > 0:
                solver.step(interval_steps)
            u_lat = solver.velocity
            u = units.to_physical_velocity(u_lat)
            velocity[i] = u
            vorticity[i] = vorticity_from_velocity(u, config.length)
    reynolds = rms_velocity(velocity[0]) * config.length / units.viscosity_physical
    return TrajectorySample(times, vorticity, velocity, reynolds, sample_id)


def _build_forcing(config: DataGenConfig, rng: np.random.Generator):
    if config.forcing == "none":
        return None
    if config.forcing == "kolmogorov":
        return KolmogorovForcing(
            config.n, amplitude=config.forcing_amplitude,
            k=int(config.forcing_k), length=config.length,
        )
    ring = RingForcing(
        config.n, amplitude=config.forcing_amplitude, k_peak=config.forcing_k,
        length=config.length, rng=rng,
    )
    if config.forcing_drag > 0:
        return CompositeForcing(ring, LinearDrag(config.forcing_drag))
    return ring


def _generate_with_ns(config: DataGenConfig, rng: np.random.Generator, sample_id: int) -> TrajectorySample:
    viscosity = config.length / config.reynolds  # U0 = 1
    cls = SpectralNSSolver2D if config.solver == "spectral" else FDNSSolver2D
    solver = cls(config.n, viscosity, length=config.length, forcing=_build_forcing(config, rng))
    solver.set_vorticity(_initial_vorticity(config, rng))

    t_c = config.convective_time
    with obs.span("datagen.warmup", duration_tc=config.warmup):
        solver.advance(config.warmup * t_c)
    solver.time = 0.0

    n_snap = config.n_snapshots
    times = np.arange(n_snap) * config.sample_interval
    vorticity = np.empty((n_snap, config.n, config.n))
    velocity = np.empty((n_snap, 2, config.n, config.n))
    with obs.span("datagen.sampling", snapshots=n_snap):
        for i in range(n_snap):
            if i > 0:
                solver.advance(config.sample_interval * t_c)
            vorticity[i] = solver.vorticity
            velocity[i] = solver.velocity
    reynolds = rms_velocity(velocity[0]) * config.length / viscosity
    return TrajectorySample(times, vorticity, velocity, reynolds, sample_id)


def generate_sample(config: DataGenConfig, rng=None, sample_id: int = 0) -> TrajectorySample:
    """Generate one trajectory according to ``config``.

    Each sample is one ``datagen.sample`` span with ``datagen.warmup``
    and ``datagen.sampling`` children (tracing is per process: with
    ``n_workers > 1`` only samples generated in an obs-configured
    process appear in its trace).
    """
    rng = as_generator(rng)
    with obs.span(
        "datagen.sample", sample_id=sample_id, solver=config.solver, grid=config.n
    ):
        if config.solver == "lbm":
            return _generate_with_lbm(config, rng, sample_id)
        return _generate_with_ns(config, rng, sample_id)


def _worker(args: tuple[DataGenConfig, int, int]) -> TrajectorySample:
    config, entropy, sample_id = args
    return generate_sample(config, np.random.default_rng(entropy), sample_id)


def generate_dataset(config: DataGenConfig, n_workers: int | None = 1) -> list[TrajectorySample]:
    """Generate ``config.n_samples`` independent trajectories.

    Each sample gets its own RNG stream spawned from ``config.seed``
    (:func:`repro.parallel.task_seeds`), so the result is identical for
    any worker count.
    """
    jobs = [
        (config, entropy, i)
        for i, entropy in enumerate(task_seeds(config.seed, config.n_samples))
    ]
    return parallel_map(_worker, jobs, n_workers=n_workers, seed=config.seed)
