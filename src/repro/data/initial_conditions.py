"""Initial-condition generators for 2-D decaying turbulence.

The paper (Sec. III) initialises each of its 5000 simulations "with
different uniformly distributed random numbers", producing several
opposite vortices, then discards the first ``0.5 t_c`` so the sharp
discontinuities vanish.  :func:`uniform_random_velocity` reproduces that
recipe; :func:`band_limited_vorticity` is a smoother alternative (energy
concentrated in a wavenumber ring) that needs little or no warm-up, used
for fast tests and examples.

Both return fields in physical units normalised so the RMS velocity is
``u0`` — i.e. the convective time is exactly ``t_c = L / u0``.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as _fft

from ..ns.fields import rms_velocity, velocity_from_vorticity, vorticity_from_velocity, wavenumbers
from ..utils.rng import as_generator

__all__ = ["uniform_random_velocity", "band_limited_vorticity", "solenoidal_projection"]


def solenoidal_projection(u: np.ndarray, length: float = 2.0 * np.pi) -> np.ndarray:
    """Project a velocity field onto its divergence-free part.

    Implemented via the vorticity: ``u_sol = curl⁻¹(curl u)``, which also
    removes the mean flow (the k = 0 mode).
    """
    return velocity_from_vorticity(vorticity_from_velocity(u, length), length)


def uniform_random_velocity(
    n: int,
    rng=None,
    u0: float = 1.0,
    length: float = 2.0 * np.pi,
) -> np.ndarray:
    """The paper's initial condition: i.i.d. uniform velocity components.

    Each component is drawn from ``U(−1, 1)``, projected to be
    divergence-free, and rescaled so the RMS speed is ``u0``.  The result
    is rough (white spectrum) — callers should warm it up through the
    solver (the paper uses ``0.5 t_c``) before sampling data.
    """
    rng = as_generator(rng)
    u = rng.uniform(-1.0, 1.0, size=(2, n, n))
    u = solenoidal_projection(u, length)
    scale = u0 / max(rms_velocity(u), 1e-30)
    return u * scale


def band_limited_vorticity(
    n: int,
    rng=None,
    k_peak: float = 6.0,
    k_width: float = 2.0,
    u0: float = 1.0,
    length: float = 2.0 * np.pi,
) -> np.ndarray:
    """Smooth random vorticity with energy in a ring around ``k_peak``.

    The spectrum is a Gaussian ring ``exp(−(|k|−k_peak)²/(2 k_width²))``
    with uniformly random phases; the field is rescaled so the induced
    velocity has RMS speed ``u0``.  Returns the vorticity field (n, n).
    """
    rng = as_generator(rng)
    kx, ky, k2 = wavenumbers(n, length)
    k_mag = np.sqrt(k2)
    amplitude = np.exp(-0.5 * ((k_mag - k_peak) / k_width) ** 2)
    amplitude[0, 0] = 0.0
    phases = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
    w_hat = amplitude * np.exp(1j * phases)
    # Zero Nyquist rows/columns so spectral derivatives stay exact.
    if n % 2 == 0:
        w_hat[n // 2, :] = 0.0
        w_hat[:, -1] = 0.0
    omega = _fft.irfft2(w_hat, s=(n, n))
    omega -= omega.mean()
    u = velocity_from_vorticity(omega, length)
    scale = u0 / max(rms_velocity(u), 1e-30)
    return omega * scale
