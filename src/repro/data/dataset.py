"""Supervised dataset construction from turbulence trajectories.

Two pairings, matching the paper's two FNO methodologies:

* :func:`make_channel_pairs` — for the 2-D FNO with temporal channels:
  inputs are ``n_in`` consecutive snapshots stacked along the channel
  axis, targets the next ``n_out`` snapshots.  With fewer output
  channels, more windows fit in the same trajectory — this implements
  the paper's "equal volume of data" protocol (Sec. VI-A), where the
  channels-1 model sees 10× more training pairs than the channels-10
  model from the same trajectories.
* :func:`make_spacetime_pairs` — for the 3-D FNO: inputs/targets are
  space–time blocks ``(C, n, n, n_in)`` / ``(C, n, n, n_out)``.

Fields can be velocity (2 channels/snapshot, the paper's training
choice), vorticity (1 channel/snapshot), or both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generation import TrajectorySample

__all__ = ["stack_fields", "make_channel_pairs", "make_spacetime_pairs", "train_test_split_samples"]


def stack_fields(samples: list[TrajectorySample], fields: str = "velocity") -> np.ndarray:
    """Stack trajectories into a ``(S, T, C, n, n)`` array.

    ``fields``: ``"velocity"`` (C = 2), ``"vorticity"`` (C = 1) or
    ``"both"`` (C = 3, ordered ``u_x, u_y, ω``).
    """
    if not samples:
        raise ValueError("no samples given")
    pieces = []
    for s in samples:
        if fields == "velocity":
            pieces.append(s.velocity)
        elif fields == "vorticity":
            pieces.append(s.vorticity[:, None])
        elif fields == "both":
            pieces.append(np.concatenate([s.velocity, s.vorticity[:, None]], axis=1))
        else:
            raise ValueError(f"unknown fields spec {fields!r}")
    return np.stack(pieces)


def make_channel_pairs(
    data: np.ndarray,
    n_in: int = 10,
    n_out: int = 5,
    stride: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed (input, target) pairs for the temporal-channel FNO.

    Parameters
    ----------
    data:
        ``(S, T, C, n, n)`` trajectory array.
    n_in, n_out:
        Snapshots per input/target window.
    stride:
        Window start spacing along the trajectory.  Default ``n_out`` —
        consecutive windows overlap in their inputs but tile the targets,
        which is what keeps the *data volume* (distinct target snapshots)
        equal across different ``n_out`` choices.

    Returns
    -------
    ``X`` of shape ``(N, n_in*C, *spatial)`` and ``Y`` of shape
    ``(N, n_out*C, *spatial)``, both copied into contiguous arrays.
    The spatial part may have any rank (2-D planes, 3-D cubes, ...).
    """
    if data.ndim < 5:
        raise ValueError("expected (S, T, C, *spatial) data with at least 2 spatial axes")
    S, T, C = data.shape[:3]
    spatial = data.shape[3:]
    if n_in < 1 or n_out < 1:
        raise ValueError("n_in and n_out must be >= 1")
    if stride is None:
        stride = n_out
    if stride < 1:
        raise ValueError("stride must be >= 1")
    window = n_in + n_out
    if window > T:
        raise ValueError(f"window {window} exceeds trajectory length {T}")
    starts = range(0, T - window + 1, stride)
    xs, ys = [], []
    for s in range(S):
        for t0 in starts:
            xs.append(data[s, t0 : t0 + n_in].reshape((n_in * C,) + spatial))
            ys.append(data[s, t0 + n_in : t0 + window].reshape((n_out * C,) + spatial))
    return np.ascontiguousarray(np.stack(xs)), np.ascontiguousarray(np.stack(ys))


def make_spacetime_pairs(
    data: np.ndarray,
    n_in: int = 10,
    n_out: int = 10,
    stride: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed pairs for the 3-D (space–time) FNO.

    Returns ``X`` of shape ``(N, C, n, n, n_in)`` and ``Y`` of shape
    ``(N, C, n, n, n_out)``; the temporal axis is last, matching
    :class:`repro.nn.FNO3d`.
    """
    if data.ndim != 5:
        raise ValueError("expected (S, T, C, n, n) data")
    S, T, C, n1, n2 = data.shape
    if stride is None:
        stride = n_out
    window = n_in + n_out
    if window > T:
        raise ValueError(f"window {window} exceeds trajectory length {T}")
    starts = range(0, T - window + 1, stride)
    xs, ys = [], []
    for s in range(S):
        for t0 in starts:
            block_in = data[s, t0 : t0 + n_in]  # (n_in, C, n, n)
            block_out = data[s, t0 + n_in : t0 + window]
            xs.append(np.moveaxis(block_in, 0, -1))  # (C, n, n, n_in)
            ys.append(np.moveaxis(block_out, 0, -1))
    return np.ascontiguousarray(np.stack(xs)), np.ascontiguousarray(np.stack(ys))


def train_test_split_samples(
    samples: list, n_test: int, rng=None
) -> tuple[list, list]:
    """Split trajectories (not windows!) into train and test sets.

    Splitting at the trajectory level prevents leakage between windows of
    the same simulation — the paper evaluates on 500 held-out initial
    conditions.
    """
    if n_test < 0 or n_test >= len(samples):
        raise ValueError("n_test must be in [0, len(samples))")
    if rng is None:
        order = np.arange(len(samples))
    else:
        order = rng.permutation(len(samples))
    test_idx = set(order[:n_test].tolist())
    train = [s for i, s in enumerate(samples) if i not in test_idx]
    test = [s for i, s in enumerate(samples) if i in test_idx]
    return train, test
