"""Dataset generation, windowing, normalisation, storage and loading."""

from .dataset import (
    make_channel_pairs,
    make_spacetime_pairs,
    stack_fields,
    train_test_split_samples,
)
from .generation import DataGenConfig, TrajectorySample, generate_dataset, generate_sample
from .initial_conditions import (
    band_limited_vorticity,
    solenoidal_projection,
    uniform_random_velocity,
)
from .io import load_samples, save_samples
from .loader import DataLoader
from .normalization import FieldNormalizer, UnitGaussianNormalizer, normalize_by_initial
from .sharded import ShardedWindowDataset, generate_sharded_dataset

__all__ = [
    "DataGenConfig", "TrajectorySample", "generate_sample", "generate_dataset",
    "uniform_random_velocity", "band_limited_vorticity", "solenoidal_projection",
    "stack_fields", "make_channel_pairs", "make_spacetime_pairs",
    "train_test_split_samples", "DataLoader",
    "UnitGaussianNormalizer", "FieldNormalizer", "normalize_by_initial",
    "save_samples", "load_samples",
    "ShardedWindowDataset", "generate_sharded_dataset",
]
