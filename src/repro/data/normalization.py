"""Field normalisation.

Fig. 1 of the paper compares raw and normalised vorticity statistics; the
FNO models are trained on normalised fields.  Two flavours:

* :class:`UnitGaussianNormalizer` — per-channel scalar mean/std computed
  over the training set (resolution independent).
* ``mode="pointwise"`` — per-grid-point mean/std, the convention of the
  original FNO reference code.
* :func:`normalize_by_initial` — the paper's Fig. 1 normalisation: scale
  each *trajectory* by its own t = 0 mean and standard deviation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnitGaussianNormalizer", "FieldNormalizer", "normalize_by_initial"]


class UnitGaussianNormalizer:
    """Shift–scale normaliser fit on a data array.

    Parameters
    ----------
    mode:
        ``"channel"`` (default) reduces over everything except axis 1;
        ``"pointwise"`` reduces over axis 0 only (per grid point, per
        channel).
    eps:
        Standard-deviation floor.
    """

    def __init__(self, mode: str = "channel", eps: float = 1e-8):
        if mode not in ("channel", "pointwise"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.eps = float(eps)
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "UnitGaussianNormalizer":
        """Compute statistics from ``(N, C, ...)`` training data."""
        if data.ndim < 2:
            raise ValueError("expected at least (N, C) data")
        if self.mode == "channel":
            axes = (0,) + tuple(range(2, data.ndim))
            self.mean = data.mean(axis=axes, keepdims=True)[0]
            self.std = data.std(axis=axes, keepdims=True)[0]
        else:
            self.mean = data.mean(axis=0)
            self.std = data.std(axis=0)
        self.std = np.maximum(self.std, self.eps)
        return self

    def _check(self) -> None:
        if self.mean is None:
            raise RuntimeError("normalizer not fitted; call fit() first")

    def encode(self, data: np.ndarray) -> np.ndarray:
        self._check()
        return (data - self.mean) / self.std

    def decode(self, data: np.ndarray) -> np.ndarray:
        self._check()
        return data * self.std + self.mean

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray | str]:
        self._check()
        return {"mode": self.mode, "mean": self.mean, "std": self.std}

    @classmethod
    def from_state_dict(cls, state: dict) -> "UnitGaussianNormalizer":
        out = cls(mode=str(state["mode"]))
        out.mean = np.asarray(state["mean"])
        out.std = np.asarray(state["std"])
        return out


class FieldNormalizer:
    """Per-*field* normaliser for temporal-channel layouts.

    The channel axis of a temporal-channel tensor holds ``n_snap``
    snapshots of ``n_fields`` components each (snapshot-major).  This
    normaliser keeps one (mean, std) pair per field component, so the same
    instance encodes inputs with ``n_in`` snapshots and decodes outputs
    with ``n_out`` snapshots.

    ``isotropic=True`` shares one standard deviation across all field
    components (means stay per-field).  Required when the model output is
    architecturally divergence-free: a per-component rescale would break
    solenoidality on decode, a shared scale (plus constants) preserves it.
    """

    def __init__(self, n_fields: int = 2, eps: float = 1e-8, isotropic: bool = False):
        if n_fields < 1:
            raise ValueError("n_fields must be >= 1")
        self.n_fields = int(n_fields)
        self.eps = float(eps)
        self.isotropic = bool(isotropic)
        self.mean: np.ndarray | None = None  # (n_fields,)
        self.std: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "FieldNormalizer":
        """Fit on ``(N, n_snap·n_fields, ...)`` data."""
        if data.ndim < 2 or data.shape[1] % self.n_fields != 0:
            raise ValueError(
                f"channel axis {data.shape[1]} not divisible by n_fields {self.n_fields}"
            )
        n_snap = data.shape[1] // self.n_fields
        per_field = data.reshape(data.shape[0], n_snap, self.n_fields, -1)
        self.mean = per_field.mean(axis=(0, 1, 3))
        self.std = np.maximum(per_field.std(axis=(0, 1, 3)), self.eps)
        if self.isotropic:
            self.std = np.full_like(self.std, float(np.sqrt(np.mean(self.std**2))))
        return self

    def _broadcast(self, stat: np.ndarray, data: np.ndarray) -> np.ndarray:
        n_snap = data.shape[1] // self.n_fields
        tiled = np.tile(stat, n_snap)
        return tiled.reshape((1, data.shape[1]) + (1,) * (data.ndim - 2))

    def encode(self, data: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("normalizer not fitted; call fit() first")
        if data.shape[1] % self.n_fields != 0:
            raise ValueError("channel axis not divisible by n_fields")
        return (data - self._broadcast(self.mean, data)) / self._broadcast(self.std, data)

    def decode(self, data: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("normalizer not fitted; call fit() first")
        if data.shape[1] % self.n_fields != 0:
            raise ValueError("channel axis not divisible by n_fields")
        return data * self._broadcast(self.std, data) + self._broadcast(self.mean, data)

    def state_dict(self) -> dict:
        if self.mean is None:
            raise RuntimeError("normalizer not fitted")
        return {"n_fields": self.n_fields, "mean": self.mean, "std": self.std,
                "isotropic": self.isotropic}

    @classmethod
    def from_state_dict(cls, state: dict) -> "FieldNormalizer":
        out = cls(n_fields=int(state["n_fields"]), isotropic=bool(state.get("isotropic", False)))
        out.mean = np.asarray(state["mean"])
        out.std = np.asarray(state["std"])
        return out


def normalize_by_initial(trajectory: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale a trajectory ``(T, ...)`` by its own t = 0 statistics.

    Returns ``(x − mean₀) / std₀`` where mean₀/std₀ are computed over the
    first snapshot — the normalisation used in the right column of the
    paper's Fig. 1.
    """
    first = trajectory[0]
    mean0 = float(first.mean())
    std0 = float(first.std())
    return (trajectory - mean0) / max(std0, eps)
