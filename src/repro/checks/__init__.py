"""repro.checks — custom static analysis + runtime sanitizers.

Two complementary halves:

* **Static** (stdlib ``ast``, zero dependencies): an engine running the
  RPR rule pack over source trees with per-line suppression comments
  (``# repro: ignore[RPR001]``), a committed baseline for grandfathered
  findings, and the ``repro check`` CLI — see :mod:`repro.checks.cli`.
* **Runtime**: :func:`dtype_sanitizer`, a context manager asserting that
  no tensor op silently widens float32 inputs to float64/complex128.

Typical use::

    from repro.checks import check_paths, load_baseline
    result = check_paths(["src"], baseline=load_baseline("checks-baseline.json"))
    assert result.ok, result.findings

    from repro.checks import dtype_sanitizer
    with dtype_sanitizer():
        model(Tensor(window.astype(np.float32)))
"""

from .baseline import Baseline, load_baseline, prune_baseline, write_baseline
from .engine import check_paths, classify_zone, iter_python_files
from .findings import CheckResult, Finding
from .registry import FileContext, RuleSpec, all_rules, get_rule, rule
from .sanitizer import DtypePromotionError, SanitizerReport, dtype_sanitizer

__all__ = [
    "Baseline", "load_baseline", "prune_baseline", "write_baseline",
    "check_paths", "classify_zone", "iter_python_files",
    "CheckResult", "Finding",
    "FileContext", "RuleSpec", "all_rules", "get_rule", "rule",
    "DtypePromotionError", "SanitizerReport", "dtype_sanitizer",
]
