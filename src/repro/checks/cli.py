"""``repro check`` — run the static-analysis rule pack from the command line.

Usage::

    python -m repro.cli check src                      # text report
    python -m repro.cli check src --format json        # machine-readable
    python -m repro.cli check src --write-baseline     # grandfather findings
    python -m repro.cli check src --prune-baseline     # drop stale entries
    python -m repro.cli check src --select RPR001,RPR003
    python -m repro.cli check --list-rules

Exit codes: 0 — clean (only suppressed/baselined findings); 1 — new
findings; 2 — usage, parse or baseline-format errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from .baseline import Baseline, load_baseline, prune_baseline, write_baseline
from .engine import check_paths
from .registry import all_rules

__all__ = ["add_check_arguments", "run_check", "main"]

DEFAULT_BASELINE = "checks-baseline.json"


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` options to an (sub)parser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file; report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="remove baseline entries whose source sites no longer "
                             "exist, rewrite the file, and exit 0")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule pack and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also list baselined and suppressed findings (text format)")


def run_check(args) -> int:
    if args.list_rules:
        for spec in all_rules():
            print(f"{spec.id}  {spec.name:<18} {spec.description}")
        return 0

    select = [r.strip() for r in args.select.split(",") if r.strip()] if args.select else None
    try:
        if args.prune_baseline:
            baseline = load_baseline(args.baseline)
            result = check_paths(args.paths, select=select, baseline=Baseline())
            pruned, removed = prune_baseline(baseline, result.findings)
            if removed:
                write_baseline(args.baseline, pruned)
            print(f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
                  f"from {args.baseline} ({len(pruned)} remaining)")
            return 0
        baseline = Baseline() if (args.no_baseline or args.write_baseline) \
            else load_baseline(args.baseline)
        result = check_paths(args.paths, select=select, baseline=baseline)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"repro check: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        new_baseline = Baseline.from_findings(
            result.findings,
            comment="Grandfathered findings; fix or justify before extending.",
        )
        write_baseline(args.baseline, new_baseline)
        print(f"wrote {len(new_baseline)} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for finding in sorted(result.findings, key=lambda f: f.sort_key()):
            print(finding.render())
        if args.verbose:
            for label, bucket in (("baselined", result.baselined),
                                  ("suppressed", result.suppressed)):
                for finding in sorted(bucket, key=lambda f: f.sort_key()):
                    print(f"[{label}] {finding.render()}")
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        print(
            f"checked {result.n_files} file(s): {len(result.findings)} finding(s), "
            f"{len(result.baselined)} baselined, {len(result.suppressed)} suppressed"
            + (f", {len(result.errors)} error(s)" if result.errors else "")
        )
    if result.errors:
        return 2
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check", description="repro static-analysis rule pack"
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
