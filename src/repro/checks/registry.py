"""Rule registry: rules self-register via the :func:`rule` decorator.

A rule is a callable ``check(ctx: FileContext) -> Iterable[Finding]``.
The engine runs every selected rule over every parsed file; rules are
pure functions of the file context, so they compose and test in
isolation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

from .findings import Finding

__all__ = ["FileContext", "RuleSpec", "rule", "all_rules", "get_rule"]

# Zones let rules scope themselves to the parts of the tree where their
# hazard actually applies (see classify_zone in engine.py).
HOT_ZONE = "hot"        # nn/, serve/, tensor/ — the float32 serving path
SOLVER_ZONE = "solver"  # ns/, ns3d/, lbm/ — float64 numerics by design
COMPILE_ZONE = "compile"  # compile/ — plan-executed closures, allocation-free
TEST_ZONE = "test"
OTHER_ZONE = "other"


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str            # display/baseline path (posix, relative)
    tree: ast.Module
    lines: list[str]     # raw source lines, 1-indexed via line_at()
    zone: str

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule_id,
            path=self.path,
            line=lineno,
            col=col + 1,
            message=message,
            snippet=self.line_at(lineno),
        )


@dataclass(frozen=True)
class RuleSpec:
    id: str
    name: str
    description: str
    check: Callable[[FileContext], Iterable[Finding]]


_RULES: dict[str, RuleSpec] = {}


def rule(rule_id: str, name: str, description: str):
    """Register ``check(ctx)`` under ``rule_id`` (e.g. ``RPR001``)."""

    def decorator(check: Callable[[FileContext], Iterable[Finding]]):
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = RuleSpec(id=rule_id, name=name, description=description, check=check)
        return check

    return decorator


def all_rules() -> list[RuleSpec]:
    # Importing the rules package populates the registry on first use.
    from . import rules  # noqa: F401

    return [spec for _, spec in sorted(_RULES.items())]


def get_rule(rule_id: str) -> RuleSpec:
    from . import rules  # noqa: F401

    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None
