"""Suppression comments: ``# repro: ignore[RULE]`` parsing.

Two scopes are supported:

* **Line** — ``# repro: ignore[RPR001]`` (or ``ignore[RPR001,RPR003]``,
  or a bare ``ignore`` for every rule) on the offending line *or the
  line directly above it*.  A justification may follow after ``--``::

      self._items = kept  # repro: ignore[RPR002] -- caller holds the lock

* **File** — ``# repro: ignore-file[RPR001]`` on a comment-only line
  anywhere in the file silences the rule for the whole file.

Rule lists are comma-separated; unknown rule names are kept verbatim so
suppressions never crash the checker (they simply match nothing).
"""

from __future__ import annotations

import re

__all__ = ["Suppressions", "parse_suppressions"]

_LINE_RE = re.compile(r"#\s*repro:\s*ignore(?!-file)(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")
_FILE_RE = re.compile(r"^\s*#\s*repro:\s*ignore-file\[(?P<rules>[A-Za-z0-9_,\s]*)\]")

ALL_RULES = "*"


def _split_rules(spec: str | None) -> frozenset[str]:
    if spec is None:
        return frozenset({ALL_RULES})
    rules = frozenset(r.strip() for r in spec.split(",") if r.strip())
    return rules or frozenset({ALL_RULES})


class Suppressions:
    """Per-file suppression state queried by the engine."""

    def __init__(self, line_rules: dict[int, frozenset[str]], file_rules: frozenset[str]):
        self._line_rules = line_rules
        self._file_rules = file_rules

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_rules or ALL_RULES in self._file_rules:
            return True
        # The comment may sit on the offending line or the line above it.
        for candidate in (line, line - 1):
            rules = self._line_rules.get(candidate)
            if rules is not None and (rule in rules or ALL_RULES in rules):
                return True
        return False


def parse_suppressions(source_lines: list[str]) -> Suppressions:
    """Extract suppression comments from raw source lines (1-indexed)."""
    line_rules: dict[int, frozenset[str]] = {}
    file_rules: frozenset[str] = frozenset()
    for i, text in enumerate(source_lines, start=1):
        file_match = _FILE_RE.search(text)
        if file_match:
            file_rules = file_rules | _split_rules(file_match.group("rules"))
            continue
        match = _LINE_RE.search(text)
        if match:
            existing = line_rules.get(i, frozenset())
            line_rules[i] = existing | _split_rules(match.group("rules"))
    return Suppressions(line_rules, file_rules)
