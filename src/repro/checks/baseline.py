"""Committed baseline of grandfathered findings.

The baseline maps a finding's :meth:`~repro.checks.findings.Finding.baseline_key`
(rule + path + stripped source line) to an allowed occurrence count, so
pre-existing findings don't fail CI while every *new* finding does.  Keys
are line-number independent: moving code around does not invalidate the
baseline, but changing the offending line (or adding another identical
one) surfaces it again.

Format (JSON, sorted keys for stable diffs)::

    {
      "version": 1,
      "comment": "optional free-form rationale",
      "findings": {"RPR001::src/repro/ns/fields.py::w_hat = np.fft.rfft2(omega)": 1, ...}
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline", "prune_baseline"]

BASELINE_VERSION = 1


class Baseline:
    """Occurrence-counted allow-list consumed destructively per run."""

    def __init__(self, counts: dict[str, int] | None = None, comment: str = ""):
        self.counts = Counter(counts or {})
        self.comment = comment

    def __len__(self) -> int:
        return sum(self.counts.values())

    def make_matcher(self):
        """Return a stateful ``match(finding) -> bool`` for one engine run.

        Each baseline entry absorbs at most its recorded count of
        findings, so an *extra* occurrence of a grandfathered pattern is
        still reported as new.
        """
        remaining = Counter(self.counts)

        def match(finding: Finding) -> bool:
            key = finding.baseline_key()
            if remaining[key] > 0:
                remaining[key] -= 1
                return True
            return False

        return match

    @staticmethod
    def from_findings(findings: list[Finding], comment: str = "") -> "Baseline":
        counts = Counter(f.baseline_key() for f in findings)
        return Baseline(dict(counts), comment=comment)

    def to_dict(self) -> dict:
        payload = {"version": BASELINE_VERSION, "findings": dict(sorted(self.counts.items()))}
        if self.comment:
            payload["comment"] = self.comment
        return payload


def prune_baseline(baseline: Baseline,
                   findings: list[Finding]) -> tuple[Baseline, int]:
    """Drop baseline entries whose source sites no longer exist.

    ``findings`` must come from a run *without* a baseline, so it is the
    complete set of live findings.  Each entry's count is clamped to the
    number of live occurrences of its key; entries that reach zero are
    removed.  Returns the pruned baseline and how many stale occurrences
    were dropped.
    """
    live = Counter(f.baseline_key() for f in findings)
    kept: dict[str, int] = {}
    removed = 0
    for key, recorded in baseline.counts.items():
        keep = min(recorded, live.get(key, 0))
        if keep:
            kept[key] = keep
        removed += recorded - keep
    return Baseline(kept, comment=baseline.comment), removed


def load_baseline(path) -> Baseline:
    path = Path(path)
    if not path.is_file():
        return Baseline()
    data = json.loads(path.read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version {data.get('version')!r}")
    counts = data.get("findings", {})
    if not all(isinstance(v, int) and v > 0 for v in counts.values()):
        raise ValueError(f"{path}: baseline counts must be positive integers")
    return Baseline(counts, comment=data.get("comment", ""))


def write_baseline(path, baseline: Baseline) -> None:
    Path(path).write_text(json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n")
