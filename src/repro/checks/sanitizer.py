"""Runtime dtype sanitizer for the autodiff engine.

The static RPR001 rule catches the promotions it can see; this context
manager catches the ones it can't — any :class:`repro.tensor.Tensor`
operation whose float32 inputs yield a float64/complex128 result at
runtime.  It wraps ``Tensor.from_op`` (the funnel every primitive's
output passes through), so one patch covers the whole op surface::

    with dtype_sanitizer():
        model(Tensor(x32))     # raises DtypePromotionError on any widening

Opt-in and cheap (one dtype comparison per op).  ``mode="record"``
collects violations instead of raising — used by the benchmark
``--sanitize`` flag to report every widening in one run.  Nested
contexts compose; the patch is reference-counted and restored when the
outermost context exits.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DtypePromotionError", "SanitizerReport", "dtype_sanitizer"]

_NARROW = (np.float32, np.complex64)
_WIDE = (np.float64, np.complex128)


class DtypePromotionError(AssertionError):
    """A float32-input tensor op produced a float64/complex128 result."""


@dataclass
class SanitizerReport:
    """Violations observed inside one ``dtype_sanitizer`` context."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


_state = threading.local()
_patch_lock = threading.Lock()
_patch_depth = 0
_original_from_op = None


def _active_reports() -> list[SanitizerReport]:
    return getattr(_state, "reports", [])


def _check_promotion(out_dtype, parent_dtypes) -> str | None:
    """Message when ``out_dtype`` widens purely-narrow inputs, else None."""
    narrow_parents = [d for d in parent_dtypes if d in _NARROW]
    wide_parents = [d for d in parent_dtypes if d in _WIDE]
    if not narrow_parents:
        return None  # float64 pipeline: widening is the contract
    names = sorted(np.dtype(d).name for d in parent_dtypes)
    if wide_parents:
        # Mixed precision going in — promotion is numpy semantics, but the
        # mix itself is the bug on a float32 path.
        return (
            f"mixed-precision op: inputs {names} -> {np.dtype(out_dtype).name}; "
            f"an upstream operand already leaked to float64"
        )
    if out_dtype in _WIDE:
        return (
            f"silent dtype promotion: all-float32 inputs -> "
            f"{np.dtype(out_dtype).name}; this op erases the f32 speedup"
        )
    return None


def _install():
    """Patch ``Tensor.from_op`` (refcounted; idempotent under nesting)."""
    global _patch_depth, _original_from_op
    from ..tensor import Tensor

    with _patch_lock:
        _patch_depth += 1
        if _patch_depth > 1:
            return
        _original_from_op = Tensor.from_op

        def checked_from_op(data, parents, backward):
            reports = _active_reports()
            if reports:
                message = _check_promotion(
                    data.dtype.type, [p.data.dtype.type for p in parents]
                )
                if message is not None:
                    for report in reports:
                        report.violations.append(message)
                    if getattr(_state, "raise_on_violation", True):
                        raise DtypePromotionError(message)
            return _original_from_op(data, parents, backward)

        Tensor.from_op = staticmethod(checked_from_op)


def _uninstall():
    global _patch_depth, _original_from_op
    from ..tensor import Tensor

    with _patch_lock:
        _patch_depth -= 1
        if _patch_depth == 0:
            Tensor.from_op = staticmethod(_original_from_op)
            _original_from_op = None


@contextmanager
def dtype_sanitizer(mode: str = "raise"):
    """Assert no tensor op widens float32 inputs to float64/complex128.

    ``mode="raise"`` (default) raises :class:`DtypePromotionError` at the
    offending op; ``mode="record"`` only collects messages.  Yields a
    :class:`SanitizerReport` either way.  The check is thread-local: only
    the threads that entered the context are sanitized.
    """
    if mode not in ("raise", "record"):
        raise ValueError("mode must be 'raise' or 'record'")
    report = SanitizerReport()
    reports = getattr(_state, "reports", None)
    if reports is None:
        reports = _state.reports = []
    previous_raise = getattr(_state, "raise_on_violation", True)
    _install()
    reports.append(report)
    _state.raise_on_violation = mode == "raise"
    try:
        yield report
    finally:
        reports.remove(report)
        _state.raise_on_violation = previous_raise
        _uninstall()
