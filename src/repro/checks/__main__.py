"""``python -m repro.checks`` — standalone entry point for CI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
