"""RPR008 — artifact integrity: raw artifact writes bypassing utils.artifacts.

Every durable artifact in the tree (checkpoints, shards, rollouts) must
be written through :mod:`repro.utils.artifacts` — the atomic
tmp-then-rename publish plus the manifest sidecar are what make crash
recovery and ``repro verify`` possible.  A bare ``np.savez`` or
``open(path, "wb")`` produces a file that can be torn mid-write and
carries no checksum, so ``repro resume`` cannot tell a good artifact
from a corrupt one.

Flags (outside tests and outside ``utils/artifacts.py`` itself):

* ``np.savez`` / ``np.savez_compressed`` / ``np.save`` calls — use
  :func:`repro.utils.artifacts.atomic_write_npz`.
* ``open(..., "wb")`` / ``path.open("wb")`` calls — use
  :func:`repro.utils.artifacts.atomic_write_bytes` (or ``_json``).

By-design exceptions (figure writes in ``analysis/visualization.py``,
the unbuffered trace sink) stay grandfathered in the committed baseline
or carry a justified ``# repro: ignore[RPR008]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name

_NP_WRITERS = {
    "np.save", "np.savez", "np.savez_compressed",
    "numpy.save", "numpy.savez", "numpy.savez_compressed",
}


def _mode_argument(call: ast.Call) -> ast.expr | None:
    """The mode expression of an ``open``-style call, if present.

    Handles builtin ``open(path, "wb")`` (mode is the second positional)
    and ``pathlib.Path.open("wb")`` (mode is the first positional); both
    also accept ``mode=`` as a keyword.
    """
    for kw in call.keywords:
        if kw.arg == "mode":
            return kw.value
    if isinstance(call.func, ast.Name):  # open(path, mode)
        return call.args[1] if len(call.args) >= 2 else None
    return call.args[0] if call.args else None  # path.open(mode)


def _is_binary_write_mode(node: ast.expr | None) -> bool:
    if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
        return False
    mode = node.value
    return "b" in mode and any(c in mode for c in "wxa")


def _is_open_call(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name):
        return call.func.id == "open"
    return isinstance(call.func, ast.Attribute) and call.func.attr == "open"


@rule(
    "RPR008",
    "artifact-integrity",
    "raw np.savez/open(..., 'wb') artifact writes that bypass "
    "utils.artifacts atomic publish and manifest sidecars",
)
def check_artifact_integrity(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE or ctx.path.endswith("utils/artifacts.py"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _NP_WRITERS:
            yield ctx.finding(
                "RPR008", node,
                f"raw {name} write: not atomic and leaves no integrity "
                "manifest; use repro.utils.artifacts.atomic_write_npz",
            )
        elif _is_open_call(node) and _is_binary_write_mode(_mode_argument(node)):
            yield ctx.finding(
                "RPR008", node,
                "raw binary write handle: a crash mid-write leaves a torn, "
                "unverifiable file; use repro.utils.artifacts atomic writers",
            )
