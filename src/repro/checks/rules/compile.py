"""RPR009 — allocation hygiene in plan-executed hot paths.

The whole point of :mod:`repro.compile` is that a plan's per-call work
writes into preallocated arena buffers: the kernel *builder* runs once
and may allocate freely, but the ``run``/``execute`` closures it returns
run on every inference request.  A fresh ``np.empty``/``np.zeros`` (or a
:class:`~repro.tensor.Tensor` construction, which drags autograd tape
machinery back in) inside one of those closures silently re-introduces
the per-op allocation the compiler exists to remove.

Within compile-zone files the rule flags, inside any function named
``run`` or ``execute`` (including nested closures):

* calls to numpy allocators (``np.empty/zeros/ones/full``, their
  ``*_like`` variants, ``np.array``, ``np.copy``), and
* ``Tensor(...)`` construction.

Intentional allocations — e.g. the output copy that keeps arena storage
from escaping to callers — carry a baseline entry or a justified
suppression.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, rule
from ._util import dotted_name

_ALLOCATORS = {
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "array", "copy",
}
_NUMPY_NAMES = {"np", "numpy"}
_HOT_FUNCTIONS = {"run", "execute"}


def _hot_allocations(fn: ast.AST) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        if parts[0] in _NUMPY_NAMES and parts[-1] in _ALLOCATORS:
            yield node, name
        elif parts[-1] == "Tensor":
            yield node, name


@rule(
    "RPR009",
    "compile-alloc-hygiene",
    "fresh numpy allocation or Tensor/tape construction inside a "
    "plan-executed run/execute hot path (write into arena buffers instead)",
)
def check_compile_allocations(ctx: FileContext) -> Iterator[Finding]:
    if "compile" not in PurePosixPath(ctx.path).parts:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in _HOT_FUNCTIONS:
            continue
        for call, name in _hot_allocations(node):
            what = (
                "constructs a Tensor (autograd tape)" if name.endswith("Tensor")
                else f"allocates via {name}"
            )
            yield ctx.finding(
                "RPR009", call,
                f"plan hot path '{node.name}' {what} on every call; "
                "preallocate an arena buffer at build time instead",
            )
