"""RPR002 — thread-safety of shared mutable state in ``repro.serve``.

The serving subsystem is the one place in the repo where many threads
(HTTP handlers, workers, the batcher) touch the same objects.  Within
``serve/`` files the rule flags, per class:

* writes to ``self.<attr>`` (assign / augmented assign / element store)
  in any non-``__init__`` method that are not lexically inside a
  ``with self.<lock>:`` block, and
* calls to mutating container methods (``append``/``pop``/``update``/…)
  on ``self.<attr>`` outside a held lock,

where ``<lock>`` is any attribute the class assigns from
``threading.Lock/RLock/Condition``.  Classes with no lock at all are held
to the same standard — their post-``__init__`` writes are flagged so the
author either adds a lock or documents thread confinement with a
justified suppression.  ``global`` rebinding inside serve functions is
flagged unconditionally.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from ..findings import Finding
from ..registry import FileContext, rule
from ._util import dotted_name, is_self_attr, self_attr_base

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "move_to_end", "setdefault",
}
_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__", "__set_name__"}


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned from threading.Lock/RLock/Condition anywhere."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = dotted_name(node.value.func)
            if name and name.split(".")[-1] in _LOCK_FACTORIES:
                for target in node.targets:
                    if is_self_attr(target):
                        locks.add(target.attr)
    return locks


def _methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_lock_context(item: ast.withitem, locks: set[str]) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # e.g. with self._lock: vs self._cond.something()
        expr = expr.func
    if is_self_attr(expr):
        return expr.attr in locks or "lock" in expr.attr.lower()
    return False


def _walk_method(node: ast.AST, locks: set[str], locked: bool, out: list[tuple[ast.AST, str]]):
    """Recurse through a method body tracking lock-held regions lexically."""
    if isinstance(node, ast.With):
        held = locked or any(_is_lock_context(item, locks) for item in node.items)
        for child in node.body:
            _walk_method(child, locks, held, out)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return  # nested callables run later, in an unknown lock context
    if not locked:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = self_attr_base(target)
                if attr is not None:
                    out.append((node, attr))
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and self_attr_base(func.value) is not None
            ):
                out.append((node, f"{self_attr_base(func.value)}.{func.attr}()"))
    for child in ast.iter_child_nodes(node):
        _walk_method(child, locks, locked, out)


@rule(
    "RPR002",
    "thread-safety",
    "writes to shared self./module state in repro.serve outside a held lock "
    "(add a lock or document thread confinement with a suppression)",
)
def check_thread_safety(ctx: FileContext) -> Iterator[Finding]:
    if "serve" not in PurePosixPath(ctx.path).parts:
        return
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        for method in _methods(cls):
            if method.name in _EXEMPT_METHODS:
                continue
            writes: list[tuple[ast.AST, str]] = []
            for stmt in method.body:
                _walk_method(stmt, locks, locked=False, out=writes)
            for node, attr in writes:
                hint = (
                    f"guard it with one of {sorted(locks)}" if locks
                    else "the class has no lock attribute"
                )
                yield ctx.finding(
                    "RPR002", node,
                    f"{cls.name}.{method.name} writes shared state "
                    f"'self.{attr}' outside a held lock; {hint}",
                )
    # global rebinding from inside functions is never thread-safe here.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Global):
            yield ctx.finding(
                "RPR002", node,
                f"'global {', '.join(node.names)}' rebinding in serve code "
                f"races across handler threads",
            )
