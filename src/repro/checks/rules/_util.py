"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "is_self_attr", "self_attr_base", "names_from_import"]


def dotted_name(node: ast.AST) -> str | None:
    """``np.fft.rfft2`` → ``"np.fft.rfft2"`` (None for non-name chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST) -> bool:
    """True for a plain ``self.<attr>`` access."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def self_attr_base(node: ast.AST) -> str | None:
    """Attribute name of the ``self.<attr>`` at the base of a target.

    Handles ``self.x``, ``self.x[i]`` and ``self.x.y`` write targets,
    returning ``"x"``; None when the target is not rooted at ``self``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if is_self_attr(node):
            return node.attr
        node = node.value
    return None


def names_from_import(tree: ast.Module, module: str) -> set[str]:
    """Local names bound by ``from <module> import ...`` statements."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names
