"""RPR011 — trust fidelity: diagnostics must see the prediction as served.

The whole point of :mod:`repro.trust` is to measure the field the client
actually receives.  Casting a prediction before diagnosing it
(``rms_divergence(u.astype(np.float64))``) reports the divergence of a
*different* field — float32 serving noise is exactly what the diagnostic
exists to catch, and an f64 round-trip hides it (the same reason RPR001
polices ``np.fft``'s silent complex128 promotion).  Decimating the grid
(``pde_residual_norm(u[..., ::2, ::2], ...)``) is worse: subsampling
aliases the high-``k`` content where FNO spectral bias lives.

Flags, outside tests: any call to a trust diagnostic entry point
(``rms_divergence``, ``pde_residual_norm``, ``spectrum_drift``,
``radial_energy_spectrum``, ``diagnose_prediction``, ``assess_prediction``)
whose field argument is

* an ``.astype(...)`` call — explicit dtype cast at the call site;
* an ``np.asarray``/``np.array``/``np.float32``/``np.float64`` cast
  carrying a ``dtype=`` keyword (or a scalar-type constructor call);
* a step-sliced subscript (``u[..., ::2, ::2]``) — grid decimation.

Fix: hand the diagnostic the prediction array itself; the trust layer
computes at native dtype/grid by construction (scipy.fft preserves
float32, multiplier caches are per-dtype).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name

# Diagnostic entry points whose array arguments must be served verbatim.
_DIAGNOSTIC_LEAVES = {
    "rms_divergence",
    "pde_residual_norm",
    "spectrum_drift",
    "radial_energy_spectrum",
    "diagnose_prediction",
    "assess_prediction",
}

_CAST_CALLS = {"float32", "float64", "single", "double", "half"}
_DTYPE_KWARG_CALLS = {"asarray", "array", "ascontiguousarray", "astype"}


def _is_cast(node: ast.AST) -> str | None:
    """A cast expression → short description, else None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func) or ""
    leaf = name.split(".")[-1]
    if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
        return ".astype(...) cast"
    if leaf in _CAST_CALLS:
        return f"{name}(...) dtype constructor"
    if leaf in _DTYPE_KWARG_CALLS and any(kw.arg == "dtype" for kw in node.keywords):
        return f"{name}(..., dtype=...) cast"
    return None


def _has_step_slice(node: ast.AST) -> bool:
    """``u[..., ::2]``-style subscripts — grid decimation."""
    if not isinstance(node, ast.Subscript):
        return False
    slices = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
    return any(isinstance(s, ast.Slice) and s.step is not None for s in slices)


@rule(
    "RPR011",
    "trust-fidelity",
    "trust diagnostics fed a cast or grid-decimated prediction; diagnose "
    "the served array at its native dtype/grid — the diagnostic exists to "
    "measure exactly what a cast would hide",
)
def check_trust_fidelity(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func) or ""
        if name.split(".")[-1] not in _DIAGNOSTIC_LEAVES:
            continue
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            cast = _is_cast(arg)
            if cast is not None:
                yield ctx.finding(
                    "RPR011", arg,
                    f"{name}(...) receives a {cast}: diagnostics must run at "
                    f"the prediction's served dtype (float32 noise is the "
                    f"signal, not an artifact to launder away)",
                )
            elif _has_step_slice(arg):
                yield ctx.finding(
                    "RPR011", arg,
                    f"{name}(...) receives a step-sliced (decimated) field: "
                    f"subsampling aliases the high-k content the diagnostics "
                    f"measure; pass the full served grid",
                )
