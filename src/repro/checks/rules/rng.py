"""RPR003 — reproducibility: every random stream must be explicitly seeded.

The paper's separation/Lyapunov analyses (and run-to-run comparable
benchmarks) require bit-reproducible forwards; an unseeded generator
destroys that silently.  Flags:

* ``np.random.default_rng()`` (and ``default_rng()`` imported from
  ``numpy.random``) called without a seed argument, and
* any call into the legacy global-state API (``np.random.rand``,
  ``np.random.seed``, ``np.random.normal``, …), whose hidden module-level
  state is shared across threads and call sites.

Test code is exempt (fixtures seed at the fixture level).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name, names_from_import

_LEGACY = {
    "seed", "rand", "randn", "random", "random_sample", "ranf", "sample",
    "standard_normal", "normal", "uniform", "randint", "random_integers",
    "choice", "permutation", "shuffle", "bytes", "beta", "binomial",
    "exponential", "gamma", "poisson",
}


@rule(
    "RPR003",
    "reproducibility",
    "unseeded default_rng() and legacy np.random global-state calls make runs "
    "non-reproducible; pass an explicit seed or Generator",
)
def check_reproducibility(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return
    local_default_rng = names_from_import(ctx.tree, "numpy.random")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        parts = name.split(".")
        is_np_random = len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random"
        if (is_np_random and parts[2] == "default_rng") or (
            len(parts) == 1 and parts[0] in local_default_rng and parts[0] == "default_rng"
        ):
            seeded = bool(node.args) or any(kw.arg == "seed" for kw in node.keywords)
            if not seeded:
                yield ctx.finding(
                    "RPR003", node,
                    f"{name}() without a seed draws OS entropy; pass an explicit "
                    f"seed (or thread a Generator through)",
                )
        elif is_np_random and parts[2] in _LEGACY:
            yield ctx.finding(
                "RPR003", node,
                f"{name} uses numpy's hidden global RNG state; use an explicit "
                f"seeded np.random.Generator instead",
            )
