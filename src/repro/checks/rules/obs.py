"""RPR006 — observability hygiene.

Two hazards, both born from the obs subsystem's contracts:

* **Wall-clock durations.** ``time.time()`` is subject to NTP steps and
  DST jumps; every duration in the repo must come from
  ``time.perf_counter()`` (the obs tracer's time base).  The rule flags
  any ``time.time()`` call outside tests — the rare legitimate wall-clock
  use (stamping a trace header with the calendar time) carries an inline
  suppression with its justification.

* **Manually entered spans.** ``obs.span(...)`` / ``tracer.span(...)``
  relies on ``with`` for LIFO enter/exit on the thread-local span stack;
  calling ``.__enter__`` by hand (or just dropping the returned span)
  corrupts the stack for every span below it.  The rule flags ``span``
  calls that are neither a ``with`` context expression nor immediately
  returned by a wrapper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name, names_from_import


def _span_call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@rule(
    "RPR006",
    "obs-hygiene",
    "time.time() used where a monotonic duration is expected, or an obs "
    "span entered without a with-statement (breaks the span stack)",
)
def check_obs_hygiene(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return

    time_aliases = names_from_import(ctx.tree, "time")

    # Calls that *are* `with` context expressions or returned verbatim
    # are the sanctioned uses of span(); collect them first.
    sanctioned: set[int] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    sanctioned.add(id(item.context_expr))
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            sanctioned.add(id(node.value))

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name == "time.time" or (name == "time" and "time" in time_aliases):
            yield ctx.finding(
                "RPR006", node,
                "time.time() is wall-clock (NTP/DST can step it); durations "
                "must use time.perf_counter() or obs.span() — suppress with "
                "a justification if calendar time is really intended",
            )
        elif _span_call_name(node) == "span" and id(node) not in sanctioned:
            yield ctx.finding(
                "RPR006", node,
                "span() entered without a with-statement; spans must be used "
                "as context managers so the thread-local span stack stays LIFO",
            )
