"""The shipped rule pack.  Importing this package registers every rule.

| id     | name               | hazard                                           |
|--------|--------------------|--------------------------------------------------|
| RPR001 | dtype-promotion    | np.fft / float64 / complex128 on the f32 path    |
| RPR002 | thread-safety      | lock-free shared-state writes in repro.serve     |
| RPR003 | reproducibility    | unseeded RNGs, legacy global np.random state     |
| RPR004 | api-contracts      | broken Module registration, mutable defaults     |
| RPR005 | numerics-hygiene   | silent except/NaN handling, dropped dealias flag |
| RPR006 | obs-hygiene        | wall-clock durations, spans entered without with |
| RPR007 | resilience-hygiene | unbounded while-True retries, swallow-and-continue |
| RPR008 | artifact-integrity | raw np.savez / open-"wb" writes bypassing manifests |
| RPR009 | compile-alloc-hygiene | fresh allocations / Tensor tape in plan-executed hot paths |
| RPR010 | parallel-hygiene   | raw multiprocessing/SharedMemory bypassing repro.parallel |
| RPR011 | trust-fidelity     | trust diagnostics fed cast/decimated predictions |
"""

from . import api, artifacts, compile, dtype, faults, numerics, obs, parallel, rng, threads, trust  # noqa: F401

__all__ = [
    "api", "artifacts", "compile", "dtype", "faults", "numerics", "obs",
    "parallel", "rng", "threads", "trust",
]
