"""RPR010 — process-parallel hygiene: raw multiprocessing outside repro.parallel.

:mod:`repro.parallel` is the repo's one process boundary: it pins the
spawn start method, derives per-task seeds so results are independent of
worker count, relays obs metrics/spans back to the parent, survives
SIGKILLed workers, and guarantees shared-memory segments are unlinked
exactly once.  A raw ``multiprocessing.Process``/``Pool``, a
``concurrent.futures.ProcessPoolExecutor``, a bare
``SharedMemory(...)`` allocation or an ``os.fork()`` anywhere else
silently forfeits all of that — fork-started children deadlock on
inherited locks, unseeded workers break bitwise reproducibility, and
unmanaged segments leak ``/dev/shm`` on crash.

Flags, outside ``repro/parallel`` and outside tests:

* calls to ``Process``/``Pool``/``ProcessPoolExecutor``/``SharedMemory``/
  ``ShareableList`` imported from ``multiprocessing``,
  ``multiprocessing.shared_memory`` or ``concurrent.futures``, and the
  same attributes reached through a module alias
  (``mp.Pool(...)``, ``concurrent.futures.ProcessPoolExecutor(...)``);
* ``multiprocessing.get_context(...)`` / ``set_start_method(...)`` —
  start-method policy belongs to the pool, not call sites;
* ``os.fork()``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name

_PROC_MODULES = {"multiprocessing", "multiprocessing.shared_memory",
                 "concurrent.futures"}
_PROC_NAMES = {
    "Process", "Pool", "ProcessPoolExecutor", "SharedMemory",
    "ShareableList", "get_context", "set_start_method",
}


def _imported_hazards(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases bound to process modules, names imported from them)."""
    aliases: set[str] = set()
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name in _PROC_MODULES or item.name == "concurrent":
                    aliases.add((item.asname or item.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module in _PROC_MODULES:
                for item in node.names:
                    if item.name in _PROC_NAMES:
                        names.add(item.asname or item.name)
                    elif item.name == "shared_memory":
                        aliases.add(item.asname or item.name)
    return aliases, names


@rule(
    "RPR010",
    "parallel-hygiene",
    "raw multiprocessing/ProcessPoolExecutor/SharedMemory use outside "
    "repro.parallel; route process fan-out through ProcessPool/ShmArena "
    "so seeding, obs relay and shm cleanup hold",
)
def check_parallel_hygiene(ctx: FileContext) -> Iterator[Finding]:
    parts = PurePosixPath(ctx.path).parts
    if ctx.zone == TEST_ZONE or "parallel" in parts:
        return
    aliases, names = _imported_hazards(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if not name:
            continue
        head, _, _ = name.partition(".")
        leaf = name.split(".")[-1]
        if name == "os.fork":
            yield ctx.finding(
                "RPR010", node,
                "os.fork() bypasses repro.parallel: forked children inherit "
                "live locks and RNG state; use ProcessPool (spawn) instead",
            )
        elif leaf in _PROC_NAMES and (head in aliases or (name == leaf and leaf in names)):
            yield ctx.finding(
                "RPR010", node,
                f"direct {name}(...) call bypasses repro.parallel; use "
                f"ProcessPool/parallel_map for workers and ShmArena for "
                f"shared memory (seeding, obs relay and cleanup come free)",
            )
