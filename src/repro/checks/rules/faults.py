"""RPR007 — resilience hygiene: hand-rolled unbounded retry loops.

With :mod:`repro.faults` in the tree there is no excuse for ad-hoc
retry code.  Flags (outside tests and outside ``repro.faults`` itself):

* ``while True:`` loops whose failure path cannot escape — the loop
  contains an exception handler with no ``raise``/``return``/``break``,
  so a persistent error spins forever.  Use
  :class:`repro.faults.RetryPolicy` / :func:`repro.faults.call_with_retry`
  (bounded attempts, seeded backoff, deadline support) instead.
* ``except Exception:`` / ``except BaseException:`` handlers whose body
  is only ``continue`` — the swallow-and-go-around variant of the
  silent handlers RPR005 already flags (bare ``except:`` and
  ``pass``-only bodies stay RPR005's to avoid double findings).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name


def _is_forever(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(n, (ast.Raise, ast.Return, ast.Break))
        for n in ast.walk(handler)
    )


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except — RPR005's finding
        return False
    names = (
        [dotted_name(t) for t in handler.type.elts]
        if isinstance(handler.type, ast.Tuple)
        else [dotted_name(handler.type)]
    )
    return any(n in ("Exception", "BaseException") for n in names)


@rule(
    "RPR007",
    "resilience-hygiene",
    "unbounded while-True retry loops and except-Exception handlers that "
    "silently continue; use repro.faults retry/backoff policies",
)
def check_resilience_hygiene(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE or "faults" in ctx.path.split("/"):
        return
    swallowed_in_loops: set[ast.ExceptHandler] = set()
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.While) and _is_forever(node.test)):
            continue
        handlers = [
            h for h in ast.walk(node)
            if isinstance(h, ast.ExceptHandler) and not _handler_escapes(h)
        ]
        if handlers:
            swallowed_in_loops.update(handlers)
            yield ctx.finding(
                "RPR007", node,
                "unbounded 'while True' retry loop: a handler swallows the "
                "error with no raise/return/break, so persistent failure "
                "spins forever; use repro.faults.RetryPolicy/call_with_retry",
            )
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and node not in swallowed_in_loops
            and _catches_broad(node)
            and len(node.body) == 1
            and isinstance(node.body[0], ast.Continue)
        ):
            yield ctx.finding(
                "RPR007", node,
                "except-Exception handler silently continues the loop; retry "
                "with a bounded repro.faults.RetryPolicy or let the error "
                "propagate",
            )
