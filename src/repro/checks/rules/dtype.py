"""RPR001 — dtype promotion hazards on the float32 serving path.

``numpy.fft`` transforms always return complex128/float64, silently
promoting float32 inputs and erasing the f32 serving speedup — the repo
policy is ``scipy.fft`` (pocketfft preserves single precision) for every
transform outside reference/test code.  In the hot zones (``nn/``,
``serve/``, ``tensor/``) the rule additionally flags explicit widenings:
``astype(np.float64)``, ``np.float64(...)``, ``np.complex128(...)`` and
``dtype=np.complex128`` arguments.

Grid-helper calls (``fftfreq``/``rfftfreq``/``fftshift``/...) are
setup-time and dtype-preserving by use, so they are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import HOT_ZONE, TEST_ZONE, FileContext, rule
from ._util import dotted_name, names_from_import

_TRANSFORMS = {
    "fft", "ifft", "fft2", "ifft2", "fftn", "ifftn",
    "rfft", "irfft", "rfft2", "irfft2", "rfftn", "irfftn",
    "hfft", "ihfft",
}
_WIDE_TYPES = {"float64", "complex128"}


def _numpy_fft_transform(func: ast.AST, fft_imports: set[str]) -> str | None:
    name = dotted_name(func)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "fft" and parts[2] in _TRANSFORMS:
        return name
    if len(parts) == 1 and parts[0] in fft_imports and parts[0] in _TRANSFORMS:
        return name
    return None


def _is_wide_dtype(node: ast.AST) -> str | None:
    name = dotted_name(node)
    if name is None:
        if isinstance(node, ast.Constant) and node.value in _WIDE_TYPES:
            return str(node.value)
        return None
    leaf = name.split(".")[-1]
    return leaf if leaf in _WIDE_TYPES else None


@rule(
    "RPR001",
    "dtype-promotion",
    "np.fft transforms and explicit float64/complex128 widenings that break the "
    "float32 policy (use scipy.fft; keep hot paths single precision)",
)
def check_dtype_promotion(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return
    fft_imports = names_from_import(ctx.tree, "numpy.fft")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        transform = _numpy_fft_transform(node.func, fft_imports)
        if transform is not None:
            yield ctx.finding(
                "RPR001", node,
                f"{transform} promotes float32 input to complex128/float64; "
                f"use scipy.fft (preserves single precision)",
            )
            continue
        if ctx.zone != HOT_ZONE:
            continue
        func_name = dotted_name(node.func)
        # np.float64(...) / np.complex128(...) constructions.
        if func_name in ("np.float64", "numpy.float64", "np.complex128", "numpy.complex128"):
            yield ctx.finding(
                "RPR001", node,
                f"{func_name}(...) constructs a wide scalar/array in a float32 hot path",
            )
            continue
        # x.astype(np.float64) / x.astype("complex128").
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype" and node.args:
            wide = _is_wide_dtype(node.args[0])
            if wide is not None:
                yield ctx.finding(
                    "RPR001", node,
                    f"astype({wide}) upcasts in a float32 hot path; "
                    f"derive the dtype from the input instead",
                )
                continue
        # dtype=np.complex128 keyword (complex64 is the f32-path choice).
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_wide_dtype(kw.value) == "complex128":
                yield ctx.finding(
                    "RPR001", kw.value,
                    "dtype=complex128 hard-codes double precision in a hot path; "
                    "select complex64 for float32 inputs",
                )
