"""RPR005 — numerics hygiene: silent error/NaN swallowing, lost dealiasing.

A turbulence solver that silently absorbs NaNs or drops its dealiasing
mask produces plausible-looking garbage.  Flags (outside tests):

* bare ``except:`` handlers (catch ``Exception``, never ``SystemExit``),
* ``except ...: pass`` — errors disappearing without trace,
* ``np.nan_to_num(...)`` without an explicit ``nan=`` argument — the
  silent 0.0 default masks solver blow-up, and
* solver-constructor calls inside a function that itself takes a
  ``dealias`` parameter but does not forward it — the ablation flag dies
  in the middle of the call chain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name


def _passes_kwargs(call: ast.Call) -> bool:
    return any(kw.arg is None for kw in call.keywords)


def _dealias_params(fn: ast.FunctionDef) -> list[str]:
    params = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
    return [p for p in params if p.startswith("dealias")]


@rule(
    "RPR005",
    "numerics-hygiene",
    "bare/silent exception handlers, default-NaN nan_to_num, and dealias flags "
    "dropped in solver call chains",
)
def check_numerics_hygiene(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield ctx.finding(
                    "RPR005", node,
                    "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                    "catch Exception (or narrower)",
                )
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                yield ctx.finding(
                    "RPR005", node,
                    "exception handler silently swallows the error (body is only "
                    "'pass'); log, re-raise or narrow it",
                )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("np.nan_to_num", "numpy.nan_to_num") and not any(
                kw.arg == "nan" for kw in node.keywords
            ):
                yield ctx.finding(
                    "RPR005", node,
                    "nan_to_num without an explicit nan= silently maps solver "
                    "blow-up to 0.0; state the replacement (or assert finiteness)",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            dealias = _dealias_params(node)
            if not dealias:
                continue
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                callee = dotted_name(call.func)
                leaf = callee.split(".")[-1] if callee else ""
                if "Solver" not in leaf:
                    continue
                forwarded = _passes_kwargs(call) or any(
                    kw.arg in dealias or (kw.arg or "").startswith("dealias")
                    for kw in call.keywords
                )
                if not forwarded:
                    yield ctx.finding(
                        "RPR005", call,
                        f"{node.name}() takes '{dealias[0]}' but calls {leaf} "
                        f"without forwarding it; the dealiasing choice is lost",
                    )
