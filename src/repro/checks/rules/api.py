"""RPR004 — API contracts of the Module system and function signatures.

``repro.nn.Module`` registers parameters/submodules through
``__setattr__`` into dicts created by ``Module.__init__`` — a subclass
whose ``__init__`` skips ``super().__init__()`` silently registers
*nothing* and trains a constant.  Flags, for direct ``Module``/
``nn.Module`` subclasses:

* an ``__init__`` without a ``super().__init__()`` call,
* no ``forward`` defined in the class body (containers that are never
  called directly should carry a justified suppression).

Independently of Module, mutable default arguments (``def f(x, y=[])``,
``y={}``, ``y=np.zeros(...)``) are flagged everywhere outside tests: the
default is created once and shared across calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import TEST_ZONE, FileContext, rule
from ._util import dotted_name

_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "deque", "Counter", "defaultdict",
    "OrderedDict", "array", "zeros", "ones", "empty", "full",
}


def _is_module_base(base: ast.AST) -> bool:
    name = dotted_name(base)
    return name is not None and name.split(".")[-1] == "Module"


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_FACTORIES
    return False


def _calls_super_init(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and dotted_name(node.func.value.func) == "super"
        ):
            return True
    return False


@rule(
    "RPR004",
    "api-contracts",
    "Module subclasses missing super().__init__()/forward and mutable default "
    "arguments (shared across calls)",
)
def check_api_contracts(ctx: FileContext) -> Iterator[Finding]:
    if ctx.zone == TEST_ZONE:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        "RPR004", default,
                        f"mutable default argument in {node.name}(); the object is "
                        f"created once and shared across calls — default to None",
                    )
        elif isinstance(node, ast.ClassDef) and any(_is_module_base(b) for b in node.bases):
            body_fns = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            init = body_fns.get("__init__")
            if init is not None and not _calls_super_init(init):
                yield ctx.finding(
                    "RPR004", init,
                    f"{node.name}.__init__ never calls super().__init__(); parameter/"
                    f"submodule registration dicts are missing and nothing trains",
                )
            if "forward" not in body_fns:
                yield ctx.finding(
                    "RPR004", node,
                    f"Module subclass {node.name} defines no forward(); calling it "
                    f"raises NotImplementedError",
                )
