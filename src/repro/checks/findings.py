"""Finding model shared by the static-analysis engine and its CLI.

A :class:`Finding` pins one rule violation to a file/line and carries the
stripped source line as its *snippet*.  The snippet — not the line
number — is what identifies a finding in the committed baseline, so
grandfathered findings survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def baseline_key(self) -> str:
        """Identity used for baseline matching (line-number independent)."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class CheckResult:
    """Aggregate outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "ok": self.ok,
            "counts": {
                "files": self.n_files,
                "findings": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "errors": len(self.errors),
            },
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
            "errors": list(self.errors),
        }
