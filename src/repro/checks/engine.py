"""The static-analysis engine: walk, parse, run rules, filter, report.

Pipeline per file: read → parse AST → classify zone → run every selected
rule → drop findings silenced by ``# repro: ignore[...]`` comments →
match the remainder against the committed baseline.  Whatever survives
is a *new* finding and fails the run.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath

from .baseline import Baseline
from .findings import CheckResult, Finding
from .registry import (
    COMPILE_ZONE,
    HOT_ZONE,
    OTHER_ZONE,
    SOLVER_ZONE,
    TEST_ZONE,
    FileContext,
    all_rules,
)
from .suppress import parse_suppressions

__all__ = ["check_paths", "classify_zone", "iter_python_files"]

_HOT_PARTS = {"nn", "serve", "tensor"}
_SOLVER_PARTS = {"ns", "ns3d", "lbm"}
_SKIP_DIRS = {"__pycache__", ".git", "_cache", "results", ".pytest_cache"}


def classify_zone(relpath: str) -> str:
    """Map a posix-style path onto the rule zones (hot/solver/test/other)."""
    parts = PurePosixPath(relpath).parts
    name = parts[-1] if parts else ""
    if "tests" in parts or name.startswith("test_") or name == "conftest.py":
        return TEST_ZONE
    if "compile" in parts:
        return COMPILE_ZONE
    if _HOT_PARTS & set(parts):
        return HOT_ZONE
    if _SOLVER_PARTS & set(parts):
        return SOLVER_ZONE
    return OTHER_ZONE


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not (_SKIP_DIRS & set(candidate.parts)):
                    out.add(candidate)
        elif path.is_file():
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(out)


def _display_path(path: Path, root: Path) -> str:
    """Stable posix path for findings/baseline keys (relative when possible)."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def check_paths(
    paths,
    select: list[str] | None = None,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
) -> CheckResult:
    """Run the rule pack over ``paths`` and classify every finding.

    ``select`` restricts to a subset of rule ids; ``baseline`` absorbs
    grandfathered findings; ``root`` anchors the relative paths used in
    output and baseline keys (default: the current directory).
    """
    root = Path(root) if root is not None else Path.cwd()
    specs = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - {s.id for s in specs}
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        specs = [s for s in specs if s.id in wanted]

    result = CheckResult()
    match_baseline = (baseline or Baseline()).make_matcher()
    for path in iter_python_files(paths):
        result.n_files += 1
        display = _display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.errors.append(f"{display}: {exc}")
            continue
        lines = source.splitlines()
        suppressions = parse_suppressions(lines)
        ctx = FileContext(path=display, tree=tree, lines=lines, zone=classify_zone(display))
        raw: list[Finding] = []
        for spec in specs:
            raw.extend(spec.check(ctx))
        for finding in sorted(raw, key=Finding.sort_key):
            if suppressions.is_suppressed(finding.rule, finding.line):
                result.suppressed.append(finding)
            elif match_baseline(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    return result
