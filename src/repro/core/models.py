"""Model builders mapping experiment configs to network instances."""

from __future__ import annotations

import numpy as np

from ..nn import FNO2d, FNO3d
from ..utils.rng import as_generator
from .config import ChannelFNOConfig, SpaceTimeFNOConfig, Spatial3DChannelsConfig

__all__ = [
    "build_fno2d_channels",
    "build_fno3d",
    "build_fno3d_spatial_channels",
    "build_model",
    "parameter_count",
]


def build_fno2d_channels(config: ChannelFNOConfig, rng=None, dtype=np.float64) -> FNO2d:
    """Instantiate the temporal-channel 2-D FNO of paper Sec. V."""
    rng = as_generator(rng)
    return FNO2d(
        in_channels=config.in_channels,
        out_channels=config.out_channels,
        modes1=config.modes1,
        modes2=config.modes2,
        width=config.width,
        n_layers=config.n_layers,
        projection_channels=config.projection_channels,
        append_grid=config.append_grid,
        divergence_free=config.divergence_free,
        activation=config.activation,
        rng=rng,
        dtype=dtype,
    )


def build_fno3d(config: SpaceTimeFNOConfig, rng=None, dtype=np.float64) -> FNO3d:
    """Instantiate the space–time 3-D FNO of paper Sec. V."""
    rng = as_generator(rng)
    return FNO3d(
        in_channels=config.n_fields,
        out_channels=config.n_fields,
        modes1=config.modes1,
        modes2=config.modes2,
        modes3=config.modes3,
        width=config.width,
        n_layers=config.n_layers,
        projection_channels=config.projection_channels,
        time_padding=config.time_padding,
        append_grid=config.append_grid,
        rng=rng,
        dtype=dtype,
    )


def build_fno3d_spatial_channels(config: Spatial3DChannelsConfig, rng=None, dtype=np.float64) -> FNO3d:
    """The paper's proposed 3-D extension: all three Fourier axes spatial
    (periodic, so no temporal padding), time snapshots in the channels."""
    rng = as_generator(rng)
    return FNO3d(
        in_channels=config.in_channels,
        out_channels=config.out_channels,
        modes1=config.modes1,
        modes2=config.modes2,
        modes3=config.modes3,
        width=config.width,
        n_layers=config.n_layers,
        projection_channels=config.projection_channels,
        time_padding=0,
        append_grid=config.append_grid,
        rng=rng,
        dtype=dtype,
    )


def build_model(config, rng=None, dtype=np.float64):
    """Dispatch on config type (used by the model zoo loader)."""
    if isinstance(config, ChannelFNOConfig):
        return build_fno2d_channels(config, rng, dtype)
    if isinstance(config, SpaceTimeFNOConfig):
        return build_fno3d(config, rng, dtype)
    if isinstance(config, Spatial3DChannelsConfig):
        return build_fno3d_spatial_channels(config, rng, dtype)
    raise TypeError(f"unknown model config {type(config).__name__}")


def parameter_count(config) -> int:
    """Closed-form trainable parameter count for a model config.

    Counts real scalars (a complex mode weight = 2).  Cross-checked
    against ``Module.num_parameters`` in the tests; used by the Table-I
    benchmark so the full 3D-FNO models never have to be materialised.
    """
    if isinstance(config, ChannelFNOConfig):
        lift_in = config.in_channels + (2 if config.append_grid else 0)
        w, L = config.width, config.n_layers
        spectral = L * 2 * w * w * config.modes1 * config.modes2 * 2
        local = L * (w * w + w)
        lifting = lift_in * w + w
        proj = w * config.projection_channels + config.projection_channels
        proj += config.projection_channels * config.out_channels + config.out_channels
        return spectral + local + lifting + proj
    if isinstance(config, SpaceTimeFNOConfig):
        lift_in = config.n_fields + (3 if config.append_grid else 0)
        w, L = config.width, config.n_layers
        spectral = L * 4 * w * w * config.modes1 * config.modes2 * config.modes3 * 2
        local = L * (w * w + w)
        lifting = lift_in * w + w
        proj = w * config.projection_channels + config.projection_channels
        proj += config.projection_channels * config.n_fields + config.n_fields
        return spectral + local + lifting + proj
    if isinstance(config, Spatial3DChannelsConfig):
        lift_in = config.in_channels + (3 if config.append_grid else 0)
        w, L = config.width, config.n_layers
        spectral = L * 4 * w * w * config.modes1 * config.modes2 * config.modes3 * 2
        local = L * (w * w + w)
        lifting = lift_in * w + w
        proj = w * config.projection_channels + config.projection_channels
        proj += config.projection_channels * config.out_channels + config.out_channels
        return spectral + local + lifting + proj
    raise TypeError(f"unknown model config {type(config).__name__}")
