"""Experiment configuration dataclasses.

Everything the paper sweeps is a field here: architecture
(width/layers/modes), optimisation (lr, StepLR gamma/step), data windows
(input/output snapshot counts) and the hybrid schedule.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = [
    "ChannelFNOConfig",
    "SpaceTimeFNOConfig",
    "Spatial3DChannelsConfig",
    "TrainingConfig",
    "HybridConfig",
]


@dataclass(frozen=True)
class ChannelFNOConfig:
    """Architecture of the 2-D FNO with temporal channels (paper Sec. V).

    ``in_channels = n_in × n_fields`` and ``out_channels = n_out ×
    n_fields``; the paper trains on velocity (``n_fields = 2``) with
    ``n_in = 10`` and ``n_out ∈ {1, 5, 10}``.
    """

    n_in: int = 10
    n_out: int = 5
    n_fields: int = 2
    modes1: int = 12
    modes2: int = 12
    width: int = 20
    n_layers: int = 4
    projection_channels: int = 128
    append_grid: bool = True
    divergence_free: bool = False
    activation: str = "gelu"

    @property
    def in_channels(self) -> int:
        return self.n_in * self.n_fields

    @property
    def out_channels(self) -> int:
        return self.n_out * self.n_fields

    def to_dict(self) -> dict:
        return {"kind": "channel_fno", **asdict(self)}


@dataclass(frozen=True)
class SpaceTimeFNOConfig:
    """Architecture of the 3-D (space–time) FNO (paper Sec. V)."""

    n_in: int = 10
    n_out: int = 10
    n_fields: int = 2
    modes1: int = 8
    modes2: int = 8
    modes3: int = 4
    width: int = 8
    n_layers: int = 4
    projection_channels: int = 128
    time_padding: int = 4
    append_grid: bool = True

    def to_dict(self) -> dict:
        return {"kind": "spacetime_fno", **asdict(self)}


@dataclass(frozen=True)
class Spatial3DChannelsConfig:
    """The paper's proposed 3-D extension (Sec. VII): Fourier modes over
    the *three spatial* dimensions with time snapshots stacked along the
    channel axis — "3D FNO for spatial and channels for temporal".

    ``n_fields = 3`` for 3-D velocity; all three mode counts address
    periodic spatial axes (``modes3`` still counts half-spectrum bins of
    the last axis), so no temporal padding is used.
    """

    n_in: int = 5
    n_out: int = 5
    n_fields: int = 3
    modes1: int = 4
    modes2: int = 4
    modes3: int = 3
    width: int = 8
    n_layers: int = 3
    projection_channels: int = 64
    append_grid: bool = True

    @property
    def in_channels(self) -> int:
        return self.n_in * self.n_fields

    @property
    def out_channels(self) -> int:
        return self.n_out * self.n_fields

    def to_dict(self) -> dict:
        return {"kind": "spatial3d_channels", **asdict(self)}


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation protocol (paper defaults: Adam, lr 1e-3, StepLR)."""

    epochs: int = 50
    batch_size: int = 8
    learning_rate: float = 1e-3
    scheduler_step: int = 100
    scheduler_gamma: float = 0.5
    weight_decay: float = 0.0
    loss: str = "l2"  # "l2" | "h1" | "divergence" | "mse"
    seed: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class HybridConfig:
    """Schedule of the hybrid FNO–PDE driver (paper Sec. VI-C).

    One cycle = the FNO emits ``n_out`` snapshots from the last ``n_in``,
    then the PDE solver integrates onward from the newest state for
    ``n_in`` snapshot intervals, re-filling the FNO input window.
    """

    n_in: int = 10
    n_out: int = 5
    n_fields: int = 2
    sample_interval: float = 0.005  # snapshot spacing, units of t_c
    n_cycles: int = 4

    def to_dict(self) -> dict:
        return asdict(self)
