"""Training loop (Adam + StepLR + relative-L2 loss, as in the paper).

Supports checkpoint/resume: :meth:`Trainer.save_checkpoint` captures the
model, the Adam moments, the scheduler position and the history, and
:meth:`Trainer.load_checkpoint` restores them so a run continues exactly
where it stopped — important for the paper-scale multi-hour trainings
(Table I lists runs up to 23 h).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .. import obs
from ..data.loader import DataLoader
from ..faults.policy import RetryPolicy, call_with_retry
from ..nn import DivergenceLoss, H1Loss, LpLoss, Module, MSELoss
from ..optim import Adam, StepLR
from ..tensor import Tensor, no_grad
from ..utils.artifacts import (
    CheckpointError,
    atomic_write_npz,
    guarded_npz_load,
    stable_hash,
)
from .config import TrainingConfig

__all__ = ["TrainingHistory", "Trainer", "make_loss"]


def make_loss(name: str) -> Module:
    """Loss factory for :class:`TrainingConfig.loss`."""
    table = {
        "l2": LpLoss,
        "mse": MSELoss,
        "h1": H1Loss,
        "divergence": DivergenceLoss,
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(table)}") from None


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def best_val_loss(self) -> float:
        return min(self.val_loss) if self.val_loss else float("nan")

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "train_loss": self.train_loss,
            "val_loss": self.val_loss,
            "learning_rate": self.learning_rate,
            "epoch_seconds": self.epoch_seconds,
        }


class Trainer:
    """Fits a model with the paper's protocol.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` mapping input tensors to predictions.
    config:
        Optimisation hyper-parameters (lr, StepLR step/gamma, epochs, …).
    loss:
        Override the loss module (defaults to ``config.loss``).
    """

    def __init__(self, model: Module, config: TrainingConfig, loss: Module | None = None):
        self.model = model
        self.config = config
        self.loss = loss if loss is not None else make_loss(config.loss)
        self.optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self.scheduler = StepLR(
            self.optimizer, step_size=config.scheduler_step, gamma=config.scheduler_gamma
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over the loader; returns the mean batch loss."""
        self.model.train()
        total, count = 0.0, 0
        for xb, yb in loader:
            with obs.span("train.batch", size=xb.shape[0]) as sp:
                self.model.zero_grad()
                loss = self.loss(self.model(xb), yb)
                loss.backward()
                self.optimizer.step()
                batch_loss = loss.item()
                sp.set(loss=batch_loss)
            total += batch_loss * xb.shape[0]
            count += xb.shape[0]
            obs.metric_counter("train_batches_total")
        return total / max(count, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int | None = None) -> float:
        """Mean loss over a held-out array pair (no gradients)."""
        self.model.eval()
        bs = batch_size or self.config.batch_size
        total, count = 0.0, 0
        with no_grad():
            for start in range(0, len(x), bs):
                xb = Tensor(x[start : start + bs])
                yb = Tensor(y[start : start + bs])
                loss = self.loss(self.model(xb), yb)
                total += loss.item() * xb.shape[0]
                count += xb.shape[0]
        return total / max(count, 1)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    @property
    def epochs_completed(self) -> int:
        return len(self.history.train_loss)

    def config_hash(self) -> str:
        """Hash of everything a checkpoint must agree with to be resumable.

        Covers the model's parameter shapes/dtypes, the optimisation
        hyper-parameters and the loss — but **not** ``epochs``, so
        legitimately extending a finished run (same everything, more
        epochs) is not rejected.
        """
        shapes = {
            name: [list(value.shape), str(value.dtype)]
            for name, value in self.model.state_dict().items()
        }
        cfg = self.config.to_dict()
        cfg.pop("epochs", None)
        return stable_hash(
            {"model": shapes, "training": cfg, "loss": type(self.loss).__name__}
        )

    def save_checkpoint(self, path, retry: RetryPolicy | None = None) -> None:
        """Write model weights, optimiser moments, scheduler position and
        the training history to ``path`` (npz).

        The write is atomic (temp file + ``os.replace``), so a crash
        mid-save leaves the previous checkpoint intact.  ``retry``
        optionally retries transient I/O errors (``OSError``) with
        seeded backoff.
        """
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        for name, value in self.model.state_dict().items():
            arrays[f"model::{name}"] = value
        opt_state = self.optimizer.state_dict()
        for i, (m, v) in enumerate(zip(opt_state["m"], opt_state["v"])):
            arrays[f"opt::m{i}"] = m
            arrays[f"opt::v{i}"] = v
        config_hash = self.config_hash()
        header = {
            "opt_t": opt_state["t"],
            "opt_lr": opt_state["lr"],
            "n_params": len(opt_state["m"]),
            "scheduler_epoch": self.scheduler.epoch,
            "config_hash": config_hash,
            "history": self.history.as_dict(),
        }
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        manifest = {
            "kind": "checkpoint", "config_hash": config_hash,
            "seed": self.config.seed,
            "extra": {"epoch": self.epochs_completed},
        }
        if retry is not None:
            call_with_retry(
                atomic_write_npz, path, arrays, site="checkpoint.write",
                manifest=manifest, policy=retry, label="checkpoint.write",
            )
        else:
            atomic_write_npz(path, arrays, site="checkpoint.write", manifest=manifest)

    def load_checkpoint(self, path) -> None:
        """Restore a state written by :meth:`save_checkpoint`.

        Raises :class:`repro.utils.CheckpointError` (naming the path)
        when the file is missing, truncated, not a checkpoint, fails its
        integrity manifest, or was written under a different training
        configuration (config-hash mismatch) — the last *before* any
        state is applied, so a rejected load leaves the trainer intact.
        """
        path = Path(path)
        with guarded_npz_load(path, verify=True) as data:
            if "header" not in data.files:
                raise CheckpointError(
                    f"{path}: not a trainer checkpoint (npz without a "
                    f"'header' entry; keys: {sorted(data.files)[:8]})"
                )
            header = json.loads(bytes(data["header"]).decode())
            stored_hash = header.get("config_hash")
            if stored_hash is not None and stored_hash != self.config_hash():
                raise CheckpointError(
                    f"{path}: checkpoint was written under config hash "
                    f"{stored_hash}, but this trainer hashes to "
                    f"{self.config_hash()} — the model architecture, "
                    f"optimiser settings or loss differ from the run that "
                    f"wrote it. Rebuild the trainer with the original config "
                    f"(for pipeline runs: `repro resume --workdir ...` reads "
                    f"pipeline.json) or start a fresh run directory. "
                    f"Changing only `epochs` never changes the hash, so "
                    f"extending training is always allowed."
                )
            model_state = {
                key[len("model::") :]: data[key]
                for key in data.files
                if key.startswith("model::")
            }
            self.model.load_state_dict(model_state)
            n = int(header["n_params"])
            self.optimizer.load_state_dict({
                "t": header["opt_t"],
                "lr": header["opt_lr"],
                "m": [data[f"opt::m{i}"] for i in range(n)],
                "v": [data[f"opt::v{i}"] for i in range(n)],
            })
            self.scheduler.epoch = int(header["scheduler_epoch"])
            hist = header["history"]
            self.history = TrainingHistory(
                train_loss=list(hist["train_loss"]),
                val_loss=list(hist["val_loss"]),
                learning_rate=list(hist["learning_rate"]),
                epoch_seconds=list(hist["epoch_seconds"]),
            )

    # ------------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        log_every: int = 0,
        rng=None,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        checkpoint_retry: RetryPolicy | None = None,
        batch_workers: int = 0,
    ) -> TrainingHistory:
        """Train until ``config.epochs`` epochs are completed in total.

        When resuming from a checkpoint, only the remaining epochs run.
        Validation (if given) is evaluated after every epoch with the
        training loss module.  With ``checkpoint_path`` and
        ``checkpoint_every`` set, a checkpoint is written every that many
        epochs (and at the end).  A ``{epoch}`` placeholder in
        ``checkpoint_path`` (e.g. ``ckpt_{epoch:05d}.npz``) yields
        epoch-numbered checkpoints — each write is a fresh file, so a
        crash during epoch N's save can never damage epoch N-1's.

        ``batch_workers > 1`` assembles batches in a
        :class:`repro.parallel.ParallelBatchLoader` process pool
        (shared-memory gather overlapping the optimiser step); the batch
        sequence is bitwise-identical to the serial loader, so the
        trained weights do not depend on this switch.
        """
        loader_rng = self.config.seed if rng is None else rng
        if batch_workers > 1:
            from ..parallel import ParallelBatchLoader

            loader = ParallelBatchLoader(
                x_train, y_train, batch_size=self.config.batch_size,
                shuffle=True, rng=loader_rng, n_workers=batch_workers,
            )
        else:
            loader = DataLoader(
                x_train, y_train, batch_size=self.config.batch_size,
                shuffle=True, rng=loader_rng,
            )
        try:
            return self._fit_epochs(
                loader, x_train, x_val, y_val, log_every,
                checkpoint_path, checkpoint_every, checkpoint_retry,
            )
        finally:
            if batch_workers > 1:
                loader.close()

    def _fit_epochs(self, loader, x_train, x_val, y_val, log_every,
                    checkpoint_path, checkpoint_every, checkpoint_retry) -> TrainingHistory:
        # Replay the shuffle stream so a resumed run sees the same batch
        # order it would have seen uninterrupted.
        for _ in range(self.epochs_completed):
            loader._rng.permutation(len(x_train))
        with obs.span("train.fit", epochs=self.config.epochs,
                      start_epoch=self.epochs_completed):
            for epoch in range(self.epochs_completed, self.config.epochs):
                # The span is the single monotonic stopwatch for the epoch:
                # the trace record and history.epoch_seconds are the same
                # number by construction (and NTP steps cannot corrupt it,
                # unlike wall-clock time.time()).
                with obs.span("train.epoch", epoch=epoch) as sp:
                    train_loss = self.train_epoch(loader)
                    self.scheduler.step()
                    sp.set(loss=train_loss, lr=self.optimizer.lr)
                elapsed = sp.duration

                self.history.train_loss.append(train_loss)
                self.history.learning_rate.append(self.optimizer.lr)
                self.history.epoch_seconds.append(elapsed)
                obs.metric_gauge("train_loss", train_loss)
                obs.metric_gauge("train_lr", self.optimizer.lr)
                obs.metric_gauge("train_epoch_seconds", elapsed)
                if x_val is not None and y_val is not None:
                    with obs.span("train.validate", epoch=epoch):
                        val_loss = self.evaluate(x_val, y_val)
                    self.history.val_loss.append(val_loss)
                    obs.metric_gauge("train_val_loss", val_loss)

                if log_every and (epoch % log_every == 0 or epoch == self.config.epochs - 1):
                    val = f" val {self.history.val_loss[-1]:.4f}" if self.history.val_loss else ""
                    print(
                        f"epoch {epoch:4d}  train {train_loss:.4f}{val}  "
                        f"lr {self.optimizer.lr:.2e}  {elapsed:.2f}s"
                    )
                if checkpoint_path is not None and checkpoint_every and (
                    (epoch + 1) % checkpoint_every == 0 or epoch == self.config.epochs - 1
                ):
                    target = str(checkpoint_path)
                    if "{epoch" in target:
                        target = target.format(epoch=self.epochs_completed)
                    with obs.span("train.checkpoint", epoch=epoch):
                        self.save_checkpoint(target, retry=checkpoint_retry)
        return self.history
