"""Hybrid FNO–PDE driver (paper Sec. VI-C).

The hybrid scheme alternates between the trained FNO and a numerical PDE
solver: the FNO consumes its ``n_in``-snapshot window and emits ``n_out``
future snapshots; the PDE solver then restarts from the newest state and
integrates for ``n_in`` snapshot intervals, refilling the FNO window.
Because the solver state is vorticity, handing an FNO prediction to the
PDE solver implicitly projects it back onto the divergence-free manifold
— the mechanism behind the divergence plot of Fig. 8.

Three drivers share the :class:`RolloutRecord` output format so the
Fig. 8/9 benchmarks can overlay them directly:

* :func:`run_pure_pde` — the reference trajectory.
* :func:`run_pure_fno` — iterative FNO roll-out (blows up eventually).
* :class:`HybridFNOPDE` — the alternating scheme (stays bounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..analysis.statistics import (
    divergence_evolution,
    global_enstrophy_evolution,
    kinetic_energy_evolution,
)
from ..faults import injection as _faults
from ..faults.policy import DivergenceGuard
from ..nn import Module
from ..ns.base import NSSolverBase
from ..ns.fields import divergence, enstrophy, kinetic_energy, vorticity_from_velocity
from .config import HybridConfig
from .rollout import apply_channels, rollout_channels

__all__ = [
    "RolloutRecord",
    "HybridFNOPDE",
    "run_pure_fno",
    "run_pure_fno_batched",
    "run_pure_pde",
    "run_hybrid_batched",
]


@dataclass
class RolloutRecord:
    """A roll-out trajectory with per-snapshot provenance.

    ``times`` are in convective units; ``source[i]`` is ``"init"``,
    ``"fno"``, ``"pde"`` or ``"pde-fallback"`` depending on which
    component produced snapshot ``i`` (``"pde-fallback"`` marks a
    window where the divergence guard rejected the FNO prediction and
    the PDE solver filled in — see :class:`repro.faults.DivergenceGuard`).
    """

    times: np.ndarray
    velocity: np.ndarray  # (T, 2, n, n)
    source: list[str] = field(default_factory=list)
    length: float = 2.0 * np.pi

    @property
    def n_snapshots(self) -> int:
        return self.velocity.shape[0]

    @property
    def vorticity(self) -> np.ndarray:
        return np.stack(
            [vorticity_from_velocity(self.velocity[t], self.length) for t in range(self.n_snapshots)]
        )

    def diagnostics(self) -> dict[str, np.ndarray]:
        """Global curves of Fig. 8: kinetic energy, enstrophy, divergence."""
        omega = self.vorticity
        return {
            "times": self.times,
            "kinetic_energy": kinetic_energy_evolution(self.velocity),
            "enstrophy": np.array([enstrophy(omega[t]) for t in range(self.n_snapshots)]),
            "global_enstrophy": global_enstrophy_evolution(omega),
            "rms_divergence": divergence_evolution(self.velocity, self.length),
        }


def _emit_rollout_diagnostics(u: np.ndarray, length: float, t: float, phase: str) -> None:
    """Physics gauges + trace event for the newest roll-out snapshot.

    Only called behind ``obs.enabled()`` — the divergence/enstrophy FFTs
    are pure observability cost.  This is how the paper's Fig. 9 error
    growth becomes observable *live*: KE drift and divergence blow-up
    show up in the gauges/trace thousands of steps before the roll-out
    visibly diverges.
    """
    omega = vorticity_from_velocity(u, length)
    ke = kinetic_energy(u)
    ens = enstrophy(omega)
    rms_div = float(np.sqrt(np.mean(divergence(u, length) ** 2)))
    obs.metric_gauge("rollout_kinetic_energy", ke)
    obs.metric_gauge("rollout_enstrophy", ens)
    obs.metric_gauge("rollout_rms_divergence", rms_div)
    obs.event(
        "rollout.diag", t=float(t), phase=phase,
        kinetic_energy=ke, enstrophy=ens, rms_divergence=rms_div,
    )


def _window_to_channels(window: np.ndarray) -> np.ndarray:
    """``(n_snap, 2, n, n)`` → ``(1, n_snap·2, n, n)`` (snapshot-major)."""
    n_snap, n_fields, n1, n2 = window.shape
    return window.reshape(1, n_snap * n_fields, n1, n2)


def _channels_to_snapshots(channels: np.ndarray, n_fields: int = 2) -> np.ndarray:
    """``(1, n_snap·n_fields, n, n)`` → ``(n_snap, n_fields, n, n)``."""
    _, C, n1, n2 = channels.shape
    return channels.reshape(C // n_fields, n_fields, n1, n2)


class HybridFNOPDE:
    """Alternating FNO/PDE integrator.

    Parameters
    ----------
    model:
        Trained temporal-channel FNO (``in/out_channels`` consistent with
        ``config``).
    solver:
        A :class:`repro.ns.NSSolverBase` instance on the same grid.
    config:
        Window sizes and snapshot spacing.
    normalizer:
        Optional :class:`repro.data.FieldNormalizer` applied around the
        model.
    convective_time:
        Physical duration of one ``t_c`` (solver time units per
        convective time; equals the domain length when U0 = 1).
    guard:
        :class:`repro.faults.DivergenceGuard` applied to every FNO
        prediction; a rejected window is replaced by PDE integration
        (``"pde-fallback"`` provenance) instead of propagating NaNs.
        Pass ``None`` to disable.
    """

    def __init__(
        self,
        model: Module,
        solver: NSSolverBase,
        config: HybridConfig,
        normalizer=None,
        convective_time: float | None = None,
        guard: DivergenceGuard | None = DivergenceGuard(),
    ):
        expected_in = config.n_in * config.n_fields
        expected_out = config.n_out * config.n_fields
        if model.in_channels != expected_in or model.out_channels != expected_out:
            raise ValueError(
                f"model channels ({model.in_channels}→{model.out_channels}) do not match "
                f"config windows ({expected_in}→{expected_out})"
            )
        self.model = model
        self.solver = solver
        self.config = config
        self.normalizer = normalizer
        self.convective_time = (
            convective_time if convective_time is not None else solver.length
        )
        self.guard = guard

    # ------------------------------------------------------------------
    def _fno_step(self, window: np.ndarray) -> np.ndarray:
        """Predict the next ``n_out`` snapshots from an ``n_in`` window."""
        pred = apply_channels(self.model, _window_to_channels(window), self.normalizer)
        return _channels_to_snapshots(pred, self.config.n_fields)

    def _pde_step(self, u_start: np.ndarray, n_snapshots: int) -> np.ndarray:
        """Integrate from ``u_start`` and return the next ``n_snapshots``."""
        self.solver.set_velocity(u_start)
        dt_phys = self.config.sample_interval * self.convective_time
        out = np.empty((n_snapshots,) + u_start.shape)
        for i in range(n_snapshots):
            self.solver.advance(dt_phys)
            out[i] = self.solver.velocity
        return out

    # ------------------------------------------------------------------
    def run(self, initial_window: np.ndarray, t0: float = 0.0) -> RolloutRecord:
        """Run ``config.n_cycles`` FNO+PDE cycles from an initial window.

        ``initial_window`` holds ``n_in`` velocity snapshots
        ``(n_in, 2, n, n)`` spaced ``sample_interval`` apart (physical
        units).  The record includes the initial window.  Delegates to
        :func:`run_hybrid_batched` with a batch of one.
        """
        return run_hybrid_batched(
            self.model,
            [self.solver],
            np.asarray(initial_window)[None],
            self.config,
            normalizer=self.normalizer,
            convective_time=self.convective_time,
            t0=t0,
            guard=self.guard,
        )[0]


def run_hybrid_batched(
    model: Module,
    solvers: list[NSSolverBase],
    windows: np.ndarray,
    config: HybridConfig,
    normalizer=None,
    convective_time: float | None = None,
    t0: float = 0.0,
    guard: DivergenceGuard | None = DivergenceGuard(),
) -> list[RolloutRecord]:
    """Run ``B`` hybrid roll-outs with their FNO steps batched together.

    The FNO half of every cycle is a single batched forward pass over all
    ``B`` requests (the serving micro-batcher's hot path); the PDE half
    runs per-request because each trajectory owns solver state.

    ``guard`` (on by default) checks each request's FNO prediction for
    NaNs/energy blow-up against its own input window; a rejected window
    is regenerated by that request's PDE solver (provenance
    ``"pde-fallback"``) so one diverging trajectory degrades gracefully
    instead of poisoning its record — the fallback the paper's hybrid
    scheme exists to make possible.

    Parameters
    ----------
    model:
        Trained temporal-channel FNO shared by all requests.
    solvers:
        One solver per request (same grid); their state is overwritten.
    windows:
        Initial windows ``(B, n_in, n_fields, n, n)`` in physical units.
    config, normalizer, convective_time, t0:
        As for :class:`HybridFNOPDE`.

    Returns one :class:`RolloutRecord` per request, bit-for-bit equal to
    running each request alone when batch-invariant kernels are active
    (see :func:`repro.tensor.batch_invariant_kernels`).
    """
    cfg = config
    windows = np.asarray(windows)
    if windows.ndim != 5:
        raise ValueError("windows must be (B, n_in, n_fields, n, n)")
    B = windows.shape[0]
    if len(solvers) != B:
        raise ValueError(f"got {len(solvers)} solvers for batch of {B}")
    if windows.shape[1] != cfg.n_in:
        raise ValueError(f"expected {cfg.n_in} initial snapshots, got {windows.shape[1]}")
    expected_in = cfg.n_in * cfg.n_fields
    expected_out = cfg.n_out * cfg.n_fields
    if model.in_channels != expected_in or model.out_channels != expected_out:
        raise ValueError(
            f"model channels ({model.in_channels}→{model.out_channels}) do not match "
            f"config windows ({expected_in}→{expected_out})"
        )
    t_c = convective_time if convective_time is not None else solvers[0].length
    dt_phys = cfg.sample_interval * t_c
    n1, n2 = windows.shape[-2:]

    snaps: list[list[np.ndarray]] = [
        [windows[b, i] for i in range(cfg.n_in)] for b in range(B)
    ]
    # Provenance is per-request: the divergence guard can replace one
    # request's FNO window with a PDE fallback while the rest of the
    # batch keeps its FNO prediction.
    sources: list[list[str]] = [["init"] * cfg.n_in for _ in range(B)]
    with obs.span("hybrid.run", batch=B, cycles=cfg.n_cycles, grid=n1):
        for cycle in range(cfg.n_cycles):
            with obs.span("hybrid.cycle", cycle=cycle):
                with obs.span("hybrid.fno"):
                    stacked = np.stack([np.stack(s[-cfg.n_in :]) for s in snaps])
                    x = stacked.reshape(B, expected_in, n1, n2)
                    pred = apply_channels(model, x, normalizer)
                    if _faults.ACTIVE:
                        pred = _faults.fire_value("rollout.step", pred, cycle=cycle)
                    for b in range(B):
                        block = pred[b].reshape(cfg.n_out, cfg.n_fields, n1, n2)
                        reason = (
                            guard.diagnose(block, float(np.mean(np.square(stacked[b]))))
                            if guard is not None
                            else None
                        )
                        if reason is None:
                            snaps[b].extend(block)
                            sources[b].extend(["fno"] * cfg.n_out)
                        else:
                            _pde_fallback(solvers[b], snaps[b], cfg.n_out, dt_phys)
                            sources[b].extend(["pde-fallback"] * cfg.n_out)
                            obs.event("hybrid.fallback", cycle=cycle, request=b,
                                      reason=reason)
                            if reason.startswith("trust:"):
                                # Physics-policy rejection (TrustGuard),
                                # distinct from NaN/energy blow-up.
                                obs.metrics_registry().counter(
                                    "rollout_trust_fallbacks_total"
                                ).inc()
                if obs.enabled():
                    _emit_rollout_diagnostics(
                        snaps[0][-1], solvers[0].length,
                        t=t0 + (len(snaps[0]) - 1) * cfg.sample_interval, phase="fno",
                    )

                with obs.span("hybrid.pde"):
                    for b, solver in enumerate(solvers):
                        solver.set_velocity(snaps[b][-1])
                        for _ in range(cfg.n_in):
                            solver.advance(dt_phys)
                            snaps[b].append(solver.velocity)
                        sources[b].extend(["pde"] * cfg.n_in)
                if obs.enabled():
                    _emit_rollout_diagnostics(
                        snaps[0][-1], solvers[0].length,
                        t=t0 + (len(snaps[0]) - 1) * cfg.sample_interval, phase="pde",
                    )

    times = t0 + np.arange(len(snaps[0])) * cfg.sample_interval
    return [
        RolloutRecord(
            times=times.copy(),
            velocity=np.stack(snaps[b]),
            source=list(sources[b]),
            length=solvers[b].length,
        )
        for b in range(B)
    ]


def _pde_fallback(solver: NSSolverBase, snaps: list, n_snapshots: int,
                  dt_phys: float) -> None:
    """Regenerate a rejected FNO window by PDE integration from the last
    good snapshot, counting the event in the obs metrics registry."""
    solver.set_velocity(snaps[-1])
    for _ in range(n_snapshots):
        solver.advance(dt_phys)
        snaps.append(solver.velocity)
    obs.metrics_registry().counter("rollout_fallbacks_total").inc()


def run_pure_fno(
    model: Module,
    initial_window: np.ndarray,
    n_snapshots: int,
    n_fields: int = 2,
    normalizer=None,
    sample_interval: float = 0.005,
    t0: float = 0.0,
    length: float = 2.0 * np.pi,
    guard: DivergenceGuard | None = None,
) -> RolloutRecord:
    """Iterative pure-FNO roll-out in the shared record format.

    Unlike the hybrid driver there is no PDE to fall back on, so a
    ``guard`` failure raises :class:`repro.faults.RolloutDiverged`.
    """
    return run_pure_fno_batched(
        model,
        np.asarray(initial_window)[None],
        n_snapshots,
        n_fields=n_fields,
        normalizer=normalizer,
        sample_interval=sample_interval,
        t0=t0,
        length=length,
        guard=guard,
    )[0]


def run_pure_fno_batched(
    model: Module,
    windows: np.ndarray,
    n_snapshots: int,
    n_fields: int = 2,
    normalizer=None,
    sample_interval: float = 0.005,
    t0: float = 0.0,
    length: float = 2.0 * np.pi,
    guard: DivergenceGuard | None = None,
) -> list[RolloutRecord]:
    """Pure-FNO roll-outs for a whole batch of initial windows at once.

    ``windows`` has shape ``(B, n_in, n_fields, n, n)``; the iterative
    roll-out stacks all ``B`` requests along the model's batch axis so
    each FNO application is a single forward pass.  Returns one
    :class:`RolloutRecord` per request.
    """
    windows = np.asarray(windows)
    if windows.ndim != 5:
        raise ValueError("windows must be (B, n_in, n_fields, n, n)")
    B, n_in, nf, n1, n2 = windows.shape
    if nf != n_fields:
        raise ValueError(f"windows have {nf} field components, expected {n_fields}")
    window_ch = windows.reshape(B, n_in * n_fields, n1, n2)
    with obs.span("rollout.pure_fno", batch=B, snapshots=n_snapshots, grid=n1):
        preds = rollout_channels(model, window_ch, n_snapshots, n_fields, normalizer,
                                 guard=guard)
    pred_snaps = preds.reshape(B, preds.shape[1] // n_fields, n_fields, n1, n2)
    times = t0 + np.arange(n_in + pred_snaps.shape[1]) * sample_interval
    if obs.enabled() and n_fields == 2:
        for i in range(pred_snaps.shape[1]):
            _emit_rollout_diagnostics(
                pred_snaps[0, i], length, t=float(times[n_in + i]), phase="fno"
            )
    source = ["init"] * n_in + ["fno"] * pred_snaps.shape[1]
    return [
        RolloutRecord(
            times=times.copy(),
            velocity=np.concatenate([windows[b], pred_snaps[b]]),
            source=list(source),
            length=length,
        )
        for b in range(B)
    ]


def run_pure_pde(
    solver: NSSolverBase,
    initial_window: np.ndarray,
    n_snapshots: int,
    sample_interval: float = 0.005,
    convective_time: float | None = None,
    t0: float = 0.0,
) -> RolloutRecord:
    """Reference PDE trajectory continuing from the newest initial snapshot."""
    t_c = convective_time if convective_time is not None else solver.length
    solver.set_velocity(initial_window[-1])
    dt_phys = sample_interval * t_c
    snaps = [initial_window[i] for i in range(initial_window.shape[0])]
    source = ["init"] * initial_window.shape[0]
    for _ in range(n_snapshots):
        solver.advance(dt_phys)
        snaps.append(solver.velocity)
        source.append("pde")
    times = t0 + np.arange(len(snaps)) * sample_interval
    return RolloutRecord(times=times, velocity=np.stack(snaps), source=source, length=solver.length)
