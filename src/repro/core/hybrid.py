"""Hybrid FNO–PDE driver (paper Sec. VI-C).

The hybrid scheme alternates between the trained FNO and a numerical PDE
solver: the FNO consumes its ``n_in``-snapshot window and emits ``n_out``
future snapshots; the PDE solver then restarts from the newest state and
integrates for ``n_in`` snapshot intervals, refilling the FNO window.
Because the solver state is vorticity, handing an FNO prediction to the
PDE solver implicitly projects it back onto the divergence-free manifold
— the mechanism behind the divergence plot of Fig. 8.

Three drivers share the :class:`RolloutRecord` output format so the
Fig. 8/9 benchmarks can overlay them directly:

* :func:`run_pure_pde` — the reference trajectory.
* :func:`run_pure_fno` — iterative FNO roll-out (blows up eventually).
* :class:`HybridFNOPDE` — the alternating scheme (stays bounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.statistics import (
    divergence_evolution,
    global_enstrophy_evolution,
    kinetic_energy_evolution,
)
from ..nn import Module
from ..ns.base import NSSolverBase
from ..ns.fields import enstrophy, vorticity_from_velocity
from ..tensor import Tensor, no_grad
from .config import HybridConfig
from .rollout import rollout_channels

__all__ = ["RolloutRecord", "HybridFNOPDE", "run_pure_fno", "run_pure_pde"]


@dataclass
class RolloutRecord:
    """A roll-out trajectory with per-snapshot provenance.

    ``times`` are in convective units; ``source[i]`` is ``"init"``,
    ``"fno"`` or ``"pde"`` depending on which component produced
    snapshot ``i``.
    """

    times: np.ndarray
    velocity: np.ndarray  # (T, 2, n, n)
    source: list[str] = field(default_factory=list)
    length: float = 2.0 * np.pi

    @property
    def n_snapshots(self) -> int:
        return self.velocity.shape[0]

    @property
    def vorticity(self) -> np.ndarray:
        return np.stack(
            [vorticity_from_velocity(self.velocity[t], self.length) for t in range(self.n_snapshots)]
        )

    def diagnostics(self) -> dict[str, np.ndarray]:
        """Global curves of Fig. 8: kinetic energy, enstrophy, divergence."""
        omega = self.vorticity
        return {
            "times": self.times,
            "kinetic_energy": kinetic_energy_evolution(self.velocity),
            "enstrophy": np.array([enstrophy(omega[t]) for t in range(self.n_snapshots)]),
            "global_enstrophy": global_enstrophy_evolution(omega),
            "rms_divergence": divergence_evolution(self.velocity, self.length),
        }


def _window_to_channels(window: np.ndarray) -> np.ndarray:
    """``(n_snap, 2, n, n)`` → ``(1, n_snap·2, n, n)`` (snapshot-major)."""
    n_snap, n_fields, n1, n2 = window.shape
    return window.reshape(1, n_snap * n_fields, n1, n2)


def _channels_to_snapshots(channels: np.ndarray, n_fields: int = 2) -> np.ndarray:
    """``(1, n_snap·n_fields, n, n)`` → ``(n_snap, n_fields, n, n)``."""
    _, C, n1, n2 = channels.shape
    return channels.reshape(C // n_fields, n_fields, n1, n2)


class HybridFNOPDE:
    """Alternating FNO/PDE integrator.

    Parameters
    ----------
    model:
        Trained temporal-channel FNO (``in/out_channels`` consistent with
        ``config``).
    solver:
        A :class:`repro.ns.NSSolverBase` instance on the same grid.
    config:
        Window sizes and snapshot spacing.
    normalizer:
        Optional :class:`repro.data.FieldNormalizer` applied around the
        model.
    convective_time:
        Physical duration of one ``t_c`` (solver time units per
        convective time; equals the domain length when U0 = 1).
    """

    def __init__(
        self,
        model: Module,
        solver: NSSolverBase,
        config: HybridConfig,
        normalizer=None,
        convective_time: float | None = None,
    ):
        expected_in = config.n_in * config.n_fields
        expected_out = config.n_out * config.n_fields
        if model.in_channels != expected_in or model.out_channels != expected_out:
            raise ValueError(
                f"model channels ({model.in_channels}→{model.out_channels}) do not match "
                f"config windows ({expected_in}→{expected_out})"
            )
        self.model = model
        self.solver = solver
        self.config = config
        self.normalizer = normalizer
        self.convective_time = (
            convective_time if convective_time is not None else solver.length
        )

    # ------------------------------------------------------------------
    def _fno_step(self, window: np.ndarray) -> np.ndarray:
        """Predict the next ``n_out`` snapshots from an ``n_in`` window."""
        x = _window_to_channels(window)
        if self.normalizer is not None:
            x = self.normalizer.encode(x)
        self.model.eval()
        with no_grad():
            pred = self.model(Tensor(x)).numpy()
        if self.normalizer is not None:
            pred = self.normalizer.decode(pred)
        return _channels_to_snapshots(pred, self.config.n_fields)

    def _pde_step(self, u_start: np.ndarray, n_snapshots: int) -> np.ndarray:
        """Integrate from ``u_start`` and return the next ``n_snapshots``."""
        self.solver.set_velocity(u_start)
        dt_phys = self.config.sample_interval * self.convective_time
        out = np.empty((n_snapshots,) + u_start.shape)
        for i in range(n_snapshots):
            self.solver.advance(dt_phys)
            out[i] = self.solver.velocity
        return out

    # ------------------------------------------------------------------
    def run(self, initial_window: np.ndarray, t0: float = 0.0) -> RolloutRecord:
        """Run ``config.n_cycles`` FNO+PDE cycles from an initial window.

        ``initial_window`` holds ``n_in`` velocity snapshots
        ``(n_in, 2, n, n)`` spaced ``sample_interval`` apart (physical
        units).  The record includes the initial window.
        """
        cfg = self.config
        if initial_window.shape[0] != cfg.n_in:
            raise ValueError(f"expected {cfg.n_in} initial snapshots, got {initial_window.shape[0]}")
        snapshots = [initial_window[i] for i in range(cfg.n_in)]
        source = ["init"] * cfg.n_in

        for _ in range(cfg.n_cycles):
            window = np.stack(snapshots[-cfg.n_in :])
            fno_out = self._fno_step(window)
            snapshots.extend(fno_out)
            source.extend(["fno"] * cfg.n_out)

            pde_out = self._pde_step(snapshots[-1], cfg.n_in)
            snapshots.extend(pde_out)
            source.extend(["pde"] * cfg.n_in)

        times = t0 + np.arange(len(snapshots)) * cfg.sample_interval
        return RolloutRecord(
            times=times,
            velocity=np.stack(snapshots),
            source=source,
            length=self.solver.length,
        )


def run_pure_fno(
    model: Module,
    initial_window: np.ndarray,
    n_snapshots: int,
    n_fields: int = 2,
    normalizer=None,
    sample_interval: float = 0.005,
    t0: float = 0.0,
    length: float = 2.0 * np.pi,
) -> RolloutRecord:
    """Iterative pure-FNO roll-out in the shared record format."""
    window_ch = _window_to_channels(initial_window)
    preds = rollout_channels(model, window_ch, n_snapshots, n_fields, normalizer)
    pred_snaps = _channels_to_snapshots(preds, n_fields)
    all_snaps = np.concatenate([initial_window, pred_snaps])
    times = t0 + np.arange(all_snaps.shape[0]) * sample_interval
    source = ["init"] * initial_window.shape[0] + ["fno"] * pred_snaps.shape[0]
    return RolloutRecord(times=times, velocity=all_snaps, source=source, length=length)


def run_pure_pde(
    solver: NSSolverBase,
    initial_window: np.ndarray,
    n_snapshots: int,
    sample_interval: float = 0.005,
    convective_time: float | None = None,
    t0: float = 0.0,
) -> RolloutRecord:
    """Reference PDE trajectory continuing from the newest initial snapshot."""
    t_c = convective_time if convective_time is not None else solver.length
    solver.set_velocity(initial_window[-1])
    dt_phys = sample_interval * t_c
    snaps = [initial_window[i] for i in range(initial_window.shape[0])]
    source = ["init"] * initial_window.shape[0]
    for _ in range(n_snapshots):
        solver.advance(dt_phys)
        snaps.append(solver.velocity)
        source.append("pde")
    times = t0 + np.arange(len(snaps)) * sample_interval
    return RolloutRecord(times=times, velocity=np.stack(snaps), source=source, length=solver.length)
