"""The paper's contribution layer: model builders, training protocol,
iterative roll-outs and the hybrid FNO–PDE scheme."""

from .config import (
    ChannelFNOConfig,
    HybridConfig,
    SpaceTimeFNOConfig,
    Spatial3DChannelsConfig,
    TrainingConfig,
)
from .costs import ComponentCosts, HybridCostModel, measure_component_costs
from .hybrid import (
    HybridFNOPDE,
    RolloutRecord,
    run_hybrid_batched,
    run_pure_fno,
    run_pure_fno_batched,
    run_pure_pde,
)
from .models import (
    build_fno2d_channels,
    build_fno3d,
    build_fno3d_spatial_channels,
    build_model,
    parameter_count,
)
from .rollout import apply_channels, rollout_channels, rollout_spacetime
from .training import Trainer, TrainingHistory, make_loss
from .zoo import (
    CheckpointError,
    checkpoint_fingerprint,
    inspect_checkpoint,
    load_model,
    save_model,
)

__all__ = [
    "ChannelFNOConfig", "SpaceTimeFNOConfig", "Spatial3DChannelsConfig", "TrainingConfig", "HybridConfig",
    "build_fno2d_channels", "build_fno3d", "build_fno3d_spatial_channels", "build_model", "parameter_count",
    "Trainer", "TrainingHistory", "make_loss",
    "apply_channels", "rollout_channels", "rollout_spacetime",
    "HybridFNOPDE", "RolloutRecord", "run_pure_fno", "run_pure_fno_batched",
    "run_pure_pde", "run_hybrid_batched",
    "ComponentCosts", "HybridCostModel", "measure_component_costs",
    "save_model", "load_model", "inspect_checkpoint", "checkpoint_fingerprint", "CheckpointError",
]
