"""Cost accounting for hybrid FNO–PDE workflows (paper Sec. VII).

The paper's discussion section prices the hybrid scheme's components:
the PDE solver takes 20 s per 0.025 t_c on a 24-core EPYC, the ML side
0.1 s host-device transfer + 0.3 s inference on an A6000, plus one-time
training and data-generation costs amortised over inference calls.

:class:`HybridCostModel` reproduces that accounting for arbitrary
measured (or projected) component costs: given per-window costs and a
hybrid schedule, it reports the wall-clock per convective time of the
pure-PDE, pure-FNO and hybrid pipelines, the hybrid speed-up, and the
number of simulated convective times needed to amortise training.

:func:`measure_component_costs` times the actual components of this
repository on the current machine so the model can be fed real numbers
(see ``benchmarks/bench_cost_model.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..nn import Module
from ..ns.base import NSSolverBase
from ..tensor import Tensor, no_grad
from .config import HybridConfig

__all__ = ["ComponentCosts", "HybridCostModel", "measure_component_costs"]


@dataclass(frozen=True)
class ComponentCosts:
    """Wall-clock seconds of the pipeline components.

    ``pde_seconds_per_interval`` / ``fno_seconds_per_window`` are the
    costs of advancing one snapshot interval with the PDE solver and of
    one FNO forward pass (which emits ``n_out`` snapshot intervals).
    ``transfer_seconds`` models the host↔device copies the paper charges
    to the ML side (0 for a pure-CPU run).  ``training_seconds`` and
    ``data_generation_seconds`` are one-time costs.
    """

    pde_seconds_per_interval: float
    fno_seconds_per_window: float
    transfer_seconds: float = 0.0
    training_seconds: float = 0.0
    data_generation_seconds: float = 0.0


class HybridCostModel:
    """Analytic wall-clock model of the three roll-out pipelines."""

    def __init__(self, costs: ComponentCosts, config: HybridConfig):
        if config.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.costs = costs
        self.config = config

    # ------------------------------------------------------------------
    @property
    def intervals_per_tc(self) -> float:
        return 1.0 / self.config.sample_interval

    def pure_pde_seconds_per_tc(self) -> float:
        return self.costs.pde_seconds_per_interval * self.intervals_per_tc

    def pure_fno_seconds_per_tc(self) -> float:
        windows = self.intervals_per_tc / self.config.n_out
        return windows * (self.costs.fno_seconds_per_window + self.costs.transfer_seconds)

    def hybrid_seconds_per_tc(self) -> float:
        """One cycle advances ``n_out + n_in`` intervals: ``n_out`` by the
        FNO, ``n_in`` by the PDE solver."""
        cfg = self.config
        cycle_intervals = cfg.n_out + cfg.n_in
        cycle_seconds = (
            self.costs.fno_seconds_per_window
            + self.costs.transfer_seconds
            + cfg.n_in * self.costs.pde_seconds_per_interval
        )
        cycles_per_tc = self.intervals_per_tc / cycle_intervals
        return cycles_per_tc * cycle_seconds

    # ------------------------------------------------------------------
    def speedup(self) -> float:
        """Hybrid speed-up over the pure PDE pipeline."""
        return self.pure_pde_seconds_per_tc() / self.hybrid_seconds_per_tc()

    def fno_fraction_of_time_simulated(self) -> float:
        cfg = self.config
        return cfg.n_out / (cfg.n_out + cfg.n_in)

    def amortisation_tcs(self) -> float:
        """Simulated convective times after which the one-time ML costs
        (training + data generation) are repaid by the hybrid savings.

        Returns ``inf`` when the hybrid is not faster than the PDE.
        """
        saving = self.pure_pde_seconds_per_tc() - self.hybrid_seconds_per_tc()
        one_time = self.costs.training_seconds + self.costs.data_generation_seconds
        if saving <= 0:
            return float("inf")
        return one_time / saving

    def summary(self) -> dict[str, float]:
        return {
            "pure_pde_s_per_tc": self.pure_pde_seconds_per_tc(),
            "pure_fno_s_per_tc": self.pure_fno_seconds_per_tc(),
            "hybrid_s_per_tc": self.hybrid_seconds_per_tc(),
            "speedup_vs_pde": self.speedup(),
            "fno_time_fraction": self.fno_fraction_of_time_simulated(),
            "amortisation_tcs": self.amortisation_tcs(),
        }


def measure_component_costs(
    model: Module,
    solver: NSSolverBase,
    config: HybridConfig,
    window: np.ndarray,
    convective_time: float | None = None,
    repeats: int = 3,
) -> ComponentCosts:
    """Time the actual FNO forward pass and PDE interval on this machine.

    ``window`` is one FNO input batch ``(1, n_in·n_fields, n, n)``.
    """
    t_c = convective_time if convective_time is not None else solver.length
    dt_phys = config.sample_interval * t_c

    model.eval()
    with no_grad():
        model(Tensor(window))  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            model(Tensor(window))
        fno_seconds = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        solver.advance(dt_phys)
    pde_seconds = (time.perf_counter() - start) / repeats

    return ComponentCosts(
        pde_seconds_per_interval=pde_seconds,
        fno_seconds_per_window=fno_seconds,
    )
