"""Model persistence: save/load trained FNOs with their configs.

The hybrid workflow treats a trained FNO as "a pre-trained ML model for
decaying 2D turbulence" (paper Sec. VI-C); this module is the
checkpoint format that makes the pre-trained model a reusable artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..data.normalization import FieldNormalizer
from ..nn import Module
from .config import ChannelFNOConfig, SpaceTimeFNOConfig, Spatial3DChannelsConfig
from .models import build_model

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1

_CONFIG_KINDS = {
    "channel_fno": ChannelFNOConfig,
    "spacetime_fno": SpaceTimeFNOConfig,
    "spatial3d_channels": Spatial3DChannelsConfig,
}


def save_model(path, model: Module, config, normalizer: FieldNormalizer | None = None) -> None:
    """Write model weights + config (+ optional normalizer) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: dict = {"version": _FORMAT_VERSION, "config": config.to_dict()}
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"param::{name}"] = value
    if normalizer is not None:
        state = normalizer.state_dict()
        header["normalizer"] = {
            "n_fields": state["n_fields"],
            "isotropic": bool(state.get("isotropic", False)),
        }
        arrays["norm::mean"] = state["mean"]
        arrays["norm::std"] = state["std"]
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_model(path, dtype=np.float64):
    """Load ``(model, config, normalizer)`` saved by :func:`save_model`.

    ``normalizer`` is None when none was stored.
    """
    path = Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {header.get('version')!r}")
        cfg_dict = dict(header["config"])
        kind = cfg_dict.pop("kind")
        try:
            config = _CONFIG_KINDS[kind](**cfg_dict)
        except KeyError:
            raise ValueError(f"unknown model kind {kind!r}") from None
        model = build_model(config, rng=np.random.default_rng(0), dtype=dtype)
        state = {
            key[len("param::") :]: data[key] for key in data.files if key.startswith("param::")
        }
        model.load_state_dict(state)
        normalizer = None
        if "normalizer" in header:
            normalizer = FieldNormalizer.from_state_dict(
                {
                    "n_fields": header["normalizer"]["n_fields"],
                    "isotropic": header["normalizer"].get("isotropic", False),
                    "mean": data["norm::mean"],
                    "std": data["norm::std"],
                }
            )
    return model, config, normalizer
