"""Model persistence: save/load trained FNOs with their configs.

The hybrid workflow treats a trained FNO as "a pre-trained ML model for
decaying 2D turbulence" (paper Sec. VI-C); this module is the
checkpoint format that makes the pre-trained model a reusable artifact.
The serving registry (:mod:`repro.serve.registry`) builds its cache on
top of :func:`load_model`, using :func:`checkpoint_fingerprint` to
detect stale entries and :func:`inspect_checkpoint` to describe models
without paying the weight-load cost.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..data.normalization import FieldNormalizer
from ..nn import Module
from ..utils.artifacts import (
    CheckpointError,
    atomic_write_npz,
    guarded_npz_load,
    stable_hash,
)
from .config import ChannelFNOConfig, SpaceTimeFNOConfig, Spatial3DChannelsConfig
from .models import build_model

__all__ = [
    "CheckpointError",
    "save_model",
    "load_model",
    "inspect_checkpoint",
    "checkpoint_fingerprint",
    "config_from_dict",
]

_FORMAT_VERSION = 1

_CONFIG_KINDS = {
    "channel_fno": ChannelFNOConfig,
    "spacetime_fno": SpaceTimeFNOConfig,
    "spatial3d_channels": Spatial3DChannelsConfig,
}


# CheckpointError now lives in repro.utils.artifacts (the data shard
# loaders raise it too); re-exported here so existing
# ``from repro.core import CheckpointError`` imports keep working.


def save_model(
    path,
    model: Module,
    config,
    normalizer: FieldNormalizer | None = None,
    manifest: dict | bool | None = None,
) -> None:
    """Write model weights + config (+ optional normalizer) to ``path``.

    The write is atomic and leaves an integrity-manifest sidecar
    recording the model kind and config hash; ``manifest`` adds
    provenance (``seed``, ``parents`` lineage, ``extra``) on top, or
    ``False`` skips the sidecar entirely.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: dict = {"version": _FORMAT_VERSION, "config": config.to_dict()}
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"param::{name}"] = value
    if normalizer is not None:
        state = normalizer.state_dict()
        header["normalizer"] = {
            "n_fields": state["n_fields"],
            "isotropic": bool(state.get("isotropic", False)),
        }
        arrays["norm::mean"] = state["mean"]
        arrays["norm::std"] = state["std"]
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    if manifest is not False:
        manifest = dict(manifest) if isinstance(manifest, dict) else {}
        manifest.setdefault("kind", "model")
        manifest.setdefault("config_hash", stable_hash(config.to_dict()))
    atomic_write_npz(path, arrays, site="checkpoint.write", manifest=manifest)


def checkpoint_fingerprint(path) -> tuple[int, int]:
    """``(mtime_ns, size)`` of a checkpoint file — cheap staleness token.

    The serving registry stores this at load time and reloads whenever
    the fingerprint of the file on disk changes (e.g. a retrained model
    written over the same path).
    """
    st = os.stat(path)
    return (st.st_mtime_ns, st.st_size)


def _read_header(data, path: Path) -> dict:
    if "header" not in data.files:
        raise CheckpointError(
            f"{path}: not a repro checkpoint (npz without a 'header' entry; "
            f"keys: {sorted(data.files)[:8]})"
        )
    try:
        header = json.loads(bytes(data["header"]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint header ({exc})") from exc
    if header.get("version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {header.get('version')!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    return header


def config_from_dict(config: dict, context: str = "config"):
    """Rebuild a model config object from its ``to_dict()`` form.

    ``config`` must carry a ``kind`` key naming one of the registered
    model families.  This is the inverse of ``config.to_dict()`` and the
    contract by which configs cross process boundaries (serve worker
    processes rebuild the model from this dict plus shared weights).
    """
    cfg_dict = dict(config)
    kind = cfg_dict.pop("kind", None)
    if kind not in _CONFIG_KINDS:
        raise CheckpointError(
            f"{context}: unknown model kind {kind!r} (known: {sorted(_CONFIG_KINDS)})"
        )
    try:
        return _CONFIG_KINDS[kind](**cfg_dict)
    except TypeError as exc:
        raise CheckpointError(f"{context}: invalid {kind!r} config ({exc})") from exc


def _build_config(header: dict, path: Path):
    return config_from_dict(header.get("config", {}), context=str(path))


def load_model(path, dtype=np.float64):
    """Load ``(model, config, normalizer)`` saved by :func:`save_model`.

    ``normalizer`` is None when none was stored.  Raises
    :class:`CheckpointError` (naming the offending path) when the file is
    missing, not a checkpoint, from an unknown version/kind, or fails its
    integrity manifest (manifest-less legacy files still load).
    """
    path = Path(path)
    with guarded_npz_load(path, verify=True) as data:
        header = _read_header(data, path)
        config = _build_config(header, path)
        model = build_model(config, rng=np.random.default_rng(0), dtype=dtype)
        state = {
            key[len("param::") :]: data[key] for key in data.files if key.startswith("param::")
        }
        try:
            model.load_state_dict(state)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(f"{path}: checkpoint weights do not match config ({exc})") from exc
        normalizer = None
        if "normalizer" in header:
            normalizer = FieldNormalizer.from_state_dict(
                {
                    "n_fields": header["normalizer"]["n_fields"],
                    "isotropic": header["normalizer"].get("isotropic", False),
                    "mean": data["norm::mean"],
                    "std": data["norm::std"],
                }
            )
    return model, config, normalizer


def inspect_checkpoint(path) -> dict:
    """Describe a checkpoint without building the model.

    Returns ``{path, version, kind, config, normalizer, n_parameters,
    n_arrays, file_bytes}``; ``normalizer`` is None or ``{n_fields,
    isotropic}``.  Used by ``repro inspect`` and the serving ``/models``
    endpoint.  Raises :class:`CheckpointError` on anything unreadable.
    """
    path = Path(path)
    with guarded_npz_load(path, verify=True) as data:
        header = _read_header(data, path)
        kind = header.get("config", {}).get("kind")
        _build_config(header, path)  # validate, result unused
        n_params = 0
        n_arrays = 0
        for key in data.files:
            if key.startswith("param::"):
                n_arrays += 1
                n_params += int(np.prod(data[key].shape))
    return {
        "path": str(path),
        "version": header["version"],
        "kind": kind,
        "config": header["config"],
        "normalizer": header.get("normalizer"),
        "n_parameters": n_params,
        "n_arrays": n_arrays,
        "file_bytes": path.stat().st_size,
    }
