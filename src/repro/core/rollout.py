"""Iterative roll-out of trained FNO models (paper Sec. VI-A/B).

The temporal-channel model maps ``n_in`` snapshots to ``n_out`` future
snapshots; longer horizons are reached by feeding predictions back as
inputs.  With fewer output channels more iterations are needed — the
source of the "compound error" the paper observes for the
1-output-channel model in Fig. 5.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..compile import runtime as _compile
from ..faults import injection as _faults
from ..faults.policy import DivergenceGuard, RolloutDiverged
from ..nn import Module
from ..tensor import Tensor, no_grad

__all__ = ["apply_channels", "rollout_channels", "rollout_spacetime"]


def apply_channels(model: Module, x: np.ndarray, normalizer=None) -> np.ndarray:
    """One batched FNO application in physical units.

    Encodes ``x`` of shape ``(B, C_in, n, n)`` with ``normalizer`` (when
    given), runs the model under ``no_grad`` and decodes the prediction
    back.  This is the single forward pass shared by the roll-out
    drivers, the hybrid scheme and the serving micro-batcher.

    The forward goes through the inference compiler when possible: a
    cached :class:`repro.compile.CompiledPlan` (bit-for-bit equal to the
    eager no-grad forward) skips autograd dispatch and per-op
    allocations.  Unsupported models or disabled compilation
    (``REPRO_COMPILE=0``) fall back to the eager path below.
    """
    if normalizer is not None:
        x = normalizer.encode(x)
    model.eval()
    pred = _compile.forward(model, np.asarray(x))
    if pred is None:
        with no_grad():
            pred = model(Tensor(x)).numpy()
    if normalizer is not None:
        pred = normalizer.decode(pred)
    return pred


def rollout_channels(
    model: Module,
    window: np.ndarray,
    n_snapshots: int,
    n_fields: int = 2,
    normalizer=None,
    guard: DivergenceGuard | None = None,
) -> np.ndarray:
    """Roll the temporal-channel FNO forward.

    Parameters
    ----------
    model:
        Trained :class:`repro.nn.FNO2d` with ``in_channels = n_in·n_fields``
        and ``out_channels = n_out·n_fields``.
    window:
        Initial input of shape ``(B, n_in·n_fields, n, n)`` in *physical*
        units (the normalizer, if given, is applied around the model).
    n_snapshots:
        Number of future snapshots to produce (the model is applied
        ``ceil(n_snapshots / n_out)`` times and the result truncated).
    n_fields:
        Field components per snapshot (2 for velocity).
    normalizer:
        Optional :class:`repro.data.UnitGaussianNormalizer` fitted on
        model inputs; predictions are decoded back to physical units
        before being re-encoded as the next input window.
    guard:
        Optional :class:`repro.faults.DivergenceGuard`; when set, every
        prediction is checked for NaNs and energy blow-up (against the
        initial window's mean-square) and a failure raises a typed
        :class:`repro.faults.RolloutDiverged` instead of silently
        feeding garbage back into the model.

    Returns
    -------
    Predictions of shape ``(B, n_snapshots·n_fields, n, n)``.
    """
    if window.ndim != 4:
        raise ValueError("window must be (B, C, n, n)")
    n_in_ch = model.in_channels
    n_out_ch = model.out_channels
    if window.shape[1] != n_in_ch:
        raise ValueError(f"window has {window.shape[1]} channels, model expects {n_in_ch}")
    if n_in_ch % n_fields or n_out_ch % n_fields:
        raise ValueError("channel counts must be multiples of n_fields")
    n_out = n_out_ch // n_fields

    history = window.copy()
    baseline_ms = float(np.mean(np.square(window))) if guard is not None else None
    produced: list[np.ndarray] = []
    total = 0
    step = 0
    while total < n_snapshots:
        with obs.span("rollout.window", produced=total, batch=window.shape[0]):
            pred = apply_channels(model, history[:, -n_in_ch:], normalizer)
        step += 1
        if _faults.ACTIVE:
            pred = _faults.fire_value("rollout.step", pred, step=step)
        if guard is not None:
            reason = guard.diagnose(pred, baseline_ms)
            if reason is not None:
                raise RolloutDiverged(step, reason)
        produced.append(pred)
        history = np.concatenate([history, pred], axis=1)
        total += n_out
    out = np.concatenate(produced, axis=1)
    return out[:, : n_snapshots * n_fields]


def rollout_spacetime(
    model: Module,
    block: np.ndarray,
    n_windows: int,
    normalizer=None,
    guard: DivergenceGuard | None = None,
) -> np.ndarray:
    """Roll the 3-D FNO forward by whole space–time windows.

    ``block`` has shape ``(B, C, n, n, n_in)``; each application produces
    the next ``n_out`` snapshots along the last axis.  Returns
    ``(B, C, n, n, n_windows·n_out)``.  ``guard`` behaves as in
    :func:`rollout_channels`.
    """
    if block.ndim != 5:
        raise ValueError("block must be (B, C, n, n, T)")
    history = block.copy()
    baseline_ms = float(np.mean(np.square(block))) if guard is not None else None
    outputs: list[np.ndarray] = []
    n_in = block.shape[-1]
    for i in range(n_windows):
        with obs.span("rollout.window", produced=i, batch=block.shape[0]):
            pred = apply_channels(model, history[..., -n_in:], normalizer)
        if _faults.ACTIVE:
            pred = _faults.fire_value("rollout.step", pred, step=i + 1)
        if guard is not None:
            reason = guard.diagnose(pred, baseline_ms)
            if reason is not None:
                raise RolloutDiverged(i + 1, reason)
        outputs.append(pred)
        history = np.concatenate([history, pred], axis=-1)
    return np.concatenate(outputs, axis=-1)
