"""D2Q9 lattice Boltzmann solver for 2-D decaying turbulence.

Fully vectorised stream-and-collide on a periodic grid.  Two collision
models: plain BGK and the entropic model (adaptive-α stabiliser) used to
generate the paper's dataset.  All state is in lattice units; use
:class:`repro.lbm.UnitSystem` to convert to the physical/convective units
the rest of the repo works in.
"""

from __future__ import annotations

import time

import numpy as np

from ..obs import hooks as _obs_hooks
from .collision import bgk_collide, entropic_collide, mrt_collide
from .equilibrium import entropic_equilibrium, polynomial_equilibrium
from .lattice import CS2, Q, VELOCITIES
from .units import UnitSystem

__all__ = ["LBMSolver2D"]


class LBMSolver2D:
    """Lattice Boltzmann integrator (D2Q9, periodic).

    Parameters
    ----------
    n:
        Grid points per side.
    tau:
        Relaxation time; ``ν_lat = c_s² (τ − 1/2)`` must be positive.
    collision:
        ``"entropic"`` (default), ``"mrt"`` or ``"bgk"``.
    """

    def __init__(self, n: int, tau: float, collision: str = "entropic"):
        if tau <= 0.5:
            raise ValueError("tau must exceed 1/2 for positive viscosity")
        if collision not in ("entropic", "mrt", "bgk"):
            raise ValueError(f"unknown collision model {collision!r}")
        self.n = int(n)
        self.tau = float(tau)
        self.collision = collision
        self._equilibrium = (
            entropic_equilibrium if collision == "entropic" else polynomial_equilibrium
        )
        self.f = np.zeros((Q, n, n))
        self.steps_taken = 0
        self.last_alpha: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_units(cls, units: UnitSystem, collision: str = "entropic") -> "LBMSolver2D":
        """Build a solver sized/relaxed according to a :class:`UnitSystem`."""
        return cls(units.n, units.tau, collision=collision)

    @property
    def viscosity(self) -> float:
        """Lattice kinematic viscosity."""
        return CS2 * (self.tau - 0.5)

    # ------------------------------------------------------------------
    # macroscopic state
    # ------------------------------------------------------------------
    def macroscopics(self) -> tuple[np.ndarray, np.ndarray]:
        """Density ``(n, n)`` and velocity ``(2, n, n)`` (lattice units)."""
        rho = self.f.sum(axis=0)
        momentum = np.tensordot(VELOCITIES.astype(float).T, self.f, axes=(1, 0))
        return rho, momentum / rho

    @property
    def density(self) -> np.ndarray:
        return self.f.sum(axis=0)

    @property
    def velocity(self) -> np.ndarray:
        return self.macroscopics()[1]

    def initialize(self, u: np.ndarray, rho: np.ndarray | None = None) -> None:
        """Set populations to the equilibrium of ``(ρ, u)`` (lattice units)."""
        u = np.asarray(u, dtype=float)
        if u.shape != (2, self.n, self.n):
            raise ValueError(f"expected velocity shape {(2, self.n, self.n)}, got {u.shape}")
        if rho is None:
            rho = np.ones((self.n, self.n))
        self.f = self._equilibrium(np.asarray(rho, dtype=float), u)
        self.steps_taken = 0

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def collide(self) -> None:
        if self.collision == "mrt":
            self.f = mrt_collide(self.f, self.tau)
            return
        rho, u = self.macroscopics()
        feq = self._equilibrium(rho, u)
        if self.collision == "entropic":
            self.f, self.last_alpha = entropic_collide(self.f, feq, self.tau)
        else:
            self.f = bgk_collide(self.f, feq, self.tau)

    def stream(self) -> None:
        for i in range(1, Q):
            cx, cy = VELOCITIES[i]
            self.f[i] = np.roll(self.f[i], shift=(cx, cy), axis=(0, 1))

    def step(self, n_steps: int = 1) -> None:
        """Advance ``n_steps`` collide–stream cycles."""
        # Single flag read per call — profiling costs nothing when off.
        profiling = _obs_hooks.PROFILING
        start = time.perf_counter() if profiling else 0.0
        for _ in range(n_steps):
            self.collide()
            self.stream()
            self.steps_taken += 1
        if profiling and n_steps:
            _obs_hooks.record_solver_advance(
                type(self).__name__, n_steps, time.perf_counter() - start
            )

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def mass(self) -> float:
        """Total mass (conserved to round-off)."""
        return float(self.f.sum())

    def momentum(self) -> np.ndarray:
        """Total momentum vector (conserved to round-off in periodic flow)."""
        return np.tensordot(VELOCITIES.astype(float).T, self.f, axes=(1, 0)).sum(axis=(1, 2))
