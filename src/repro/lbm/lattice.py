"""D2Q9 lattice constants.

Velocity set (lattice units, one cell per step)::

    6 2 5
    3 0 1
    7 4 8

with the standard weights ``w = (4/9, 1/9×4, 1/36×4)`` and lattice sound
speed ``c_s² = 1/3``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Q", "VELOCITIES", "WEIGHTS", "CS2", "OPPOSITE"]

Q = 9

#: Discrete velocities ``(Q, 2)``, components in {-1, 0, 1}.
VELOCITIES = np.array(
    [
        [0, 0],
        [1, 0],
        [0, 1],
        [-1, 0],
        [0, -1],
        [1, 1],
        [-1, 1],
        [-1, -1],
        [1, -1],
    ],
    dtype=int,
)

#: Quadrature weights, summing to 1.
WEIGHTS = np.array(
    [4.0 / 9.0] + [1.0 / 9.0] * 4 + [1.0 / 36.0] * 4
)

#: Lattice sound speed squared.
CS2 = 1.0 / 3.0

#: Index of the opposite velocity (bounce-back pairs).
OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6], dtype=int)
