"""Collision operators: BGK and entropic (adaptive α).

The entropic collision writes the post-collision state as

    f' = f + α β (f_eq − f),      β = 1 / (2τ)

where the path length ``α`` is the non-trivial root of the entropy
condition ``H(f + αΔ) = H(f)`` with ``Δ = f_eq − f`` and
``H(f) = Σ_i f_i ln(f_i / w_i)``.  For well-resolved flows ``α ≈ 2``
(recovering BGK); near under-resolved gradients ``α < 2`` acts as a
smart, parameter-free limiter — this is what lets the entropic model run
stably at the paper's Re ≈ 7000–8000.

``solve_alpha`` performs a vectorised, damped Newton iteration over the
whole grid with positivity-aware bracketing; cells where the deviation
from equilibrium is negligible keep the BGK value ``α = 2``.
"""

from __future__ import annotations

import numpy as np

from .lattice import WEIGHTS

__all__ = ["h_function", "solve_alpha", "bgk_collide", "entropic_collide", "mrt_collide", "MRT_MATRIX"]

_W = WEIGHTS[:, None, None]


def h_function(f: np.ndarray) -> np.ndarray:
    """Discrete H-function ``Σ_i f_i ln(f_i/w_i)`` per cell (shape (n, n))."""
    with np.errstate(divide="ignore", invalid="ignore"):
        vals = f * np.log(f / _W)
    return np.where(f > 0, vals, 0.0).sum(axis=0)


def _h_and_derivative(f: np.ndarray, delta: np.ndarray, alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``G(α) = H(f + αΔ) − H(f)`` and ``G'(α)``, elementwise over cells."""
    fa = f + alpha[None] * delta
    fa = np.maximum(fa, 1e-15)
    log_term = np.log(fa / _W)
    g = (fa * log_term).sum(axis=0) - (np.maximum(f, 1e-15) * np.log(np.maximum(f, 1e-15) / _W)).sum(axis=0)
    gp = (delta * (log_term + 1.0)).sum(axis=0)
    return g, gp


def solve_alpha(
    f: np.ndarray,
    feq: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 20,
    alpha_init: float = 2.0,
) -> np.ndarray:
    """Solve the entropy condition for the path length ``α`` per cell.

    Returns an array of shape ``(n, n)``; cells essentially at
    equilibrium get ``α = 2`` (the BGK fixed point of the condition).
    """
    delta = feq - f
    n_shape = f.shape[1:]
    alpha = np.full(n_shape, float(alpha_init))

    # Positivity bound: f + αΔ must stay positive.  α_max is the largest
    # admissible step (cells with all Δ ≥ 0 are unbounded).
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(delta < 0, -f / np.where(delta < 0, delta, -1.0), np.inf)
    alpha_max = 0.999 * ratios.min(axis=0)
    alpha = np.minimum(alpha, np.where(np.isfinite(alpha_max), alpha_max, alpha))

    # Cells with negligible deviation keep α = 2: Newton would divide by ~0.
    dev = np.abs(delta).max(axis=0) / np.maximum(np.abs(feq).max(axis=0), 1e-15)
    active = dev > 1e-12

    # The path H(f + αΔ) has its minimum at α = 1 (the equilibrium), so the
    # non-trivial root of G(α) = 0 always lies in (1, α_max]; clamping the
    # Newton iterate into that bracket prevents convergence to the trivial
    # root at α = 0.
    lo = 1.0 + 1e-9
    hi = np.where(np.isfinite(alpha_max), np.maximum(alpha_max, lo), 4.0)
    for _ in range(max_iter):
        g, gp = _h_and_derivative(f, delta, alpha)
        step = g / np.where(np.abs(gp) > 1e-15, gp, 1.0)
        new_alpha = np.clip(alpha - step, lo, hi)
        converged = np.abs(g) < tol
        update = active & ~converged
        alpha = np.where(update, new_alpha, alpha)
        if not update.any():
            break

    alpha = np.where(active, alpha, 2.0)
    return alpha


def bgk_collide(f: np.ndarray, feq: np.ndarray, tau: float) -> np.ndarray:
    """Single-relaxation-time BGK collision ``f + (f_eq − f)/τ``."""
    return f + (feq - f) / tau


def entropic_collide(f: np.ndarray, feq: np.ndarray, tau: float) -> tuple[np.ndarray, np.ndarray]:
    """Entropic collision; returns ``(f', α)`` for diagnostics."""
    beta = 1.0 / (2.0 * tau)
    alpha = solve_alpha(f, feq)
    return f + (alpha * beta)[None] * (feq - f), alpha


# ---------------------------------------------------------------------------
# Multiple-relaxation-time collision (d'Humières; Lallemand & Luo 2000)
# ---------------------------------------------------------------------------

#: Gram–Schmidt moment basis for the D2Q9 velocity ordering of
#: :mod:`repro.lbm.lattice`: (ρ, e, ε, j_x, q_x, j_y, q_y, p_xx, p_xy).
MRT_MATRIX = np.array(
    [
        [1, 1, 1, 1, 1, 1, 1, 1, 1],
        [-4, -1, -1, -1, -1, 2, 2, 2, 2],
        [4, -2, -2, -2, -2, 1, 1, 1, 1],
        [0, 1, 0, -1, 0, 1, -1, -1, 1],
        [0, -2, 0, 2, 0, 1, -1, -1, 1],
        [0, 0, 1, 0, -1, 1, 1, -1, -1],
        [0, 0, -2, 0, 2, 1, 1, -1, -1],
        [0, 1, -1, 1, -1, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 1, -1, 1, -1],
    ],
    dtype=float,
)

_MRT_INVERSE = np.linalg.inv(MRT_MATRIX)


def _mrt_equilibrium_moments(rho: np.ndarray, jx: np.ndarray, jy: np.ndarray) -> np.ndarray:
    """Equilibrium moments of the Lallemand–Luo model (shape (9, n, n))."""
    jsq = (jx * jx + jy * jy) / np.maximum(rho, 1e-15)
    return np.stack(
        [
            rho,
            -2.0 * rho + 3.0 * jsq,
            rho - 3.0 * jsq,
            jx,
            -jx,
            jy,
            -jy,
            (jx * jx - jy * jy) / np.maximum(rho, 1e-15),
            jx * jy / np.maximum(rho, 1e-15),
        ]
    )


def mrt_collide(
    f: np.ndarray,
    tau: float,
    s_e: float = 1.1,
    s_eps: float = 1.1,
    s_q: float = 1.2,
) -> np.ndarray:
    """Multiple-relaxation-time collision.

    The stress moments ``p_xx``/``p_xy`` relax at ``1/τ`` (setting the
    shear viscosity exactly as in BGK); the non-hydrodynamic moments
    relax at tunable rates ``s_e``/``s_eps``/``s_q``, which damps the
    ghost modes that destabilise BGK near ``τ → 1/2``.  Conserved moments
    (ρ, j) have rate 0.  With all rates set to ``1/τ`` MRT reduces to BGK
    exactly.
    """
    from .lattice import VELOCITIES

    s_nu = 1.0 / tau
    rates = np.array([0.0, s_e, s_eps, 0.0, s_q, 0.0, s_q, s_nu, s_nu])

    rho = f.sum(axis=0)
    jx = np.tensordot(VELOCITIES[:, 0].astype(float), f, axes=(0, 0))
    jy = np.tensordot(VELOCITIES[:, 1].astype(float), f, axes=(0, 0))

    m = np.tensordot(MRT_MATRIX, f, axes=(1, 0))
    m_eq = _mrt_equilibrium_moments(rho, jx, jy)
    m -= rates[:, None, None] * (m - m_eq)
    return np.tensordot(_MRT_INVERSE, m, axes=(1, 0))
