"""Unit conversion between lattice and physical (convective) units.

The paper reports everything in convective time units ``t_c = L/U0``.
The lattice works in cell/step units with a small characteristic velocity
``u0_lattice`` (to keep the Mach number low).  This module holds the
bookkeeping that maps between the two systems.

With ``N`` cells per side, physical box ``L``, physical characteristic
velocity ``U0`` and Reynolds number ``Re = U0 L / ν``:

* velocity scale     ``C_u = U0 / u0_lattice``
* length scale       ``C_x = L / N``
* time scale         ``C_t = C_x / C_u``
* lattice viscosity  ``ν_lat = u0_lattice · N / Re``  → ``τ = ν_lat/c_s² + 1/2``
* steps per ``t_c``  ``N / u0_lattice``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lattice import CS2

__all__ = ["UnitSystem"]


@dataclass(frozen=True)
class UnitSystem:
    """Lattice ↔ physical unit bookkeeping for one simulation setup.

    Parameters
    ----------
    n:
        Grid points per side.
    reynolds:
        Target Reynolds number ``U0 L / ν``.
    length:
        Physical box size (default ``2π``).
    u0:
        Physical characteristic (RMS) velocity (default 1.0, so
        ``t_c = L``).
    u0_lattice:
        Characteristic lattice velocity; must be well below the lattice
        sound speed ``√(1/3) ≈ 0.577`` (default 0.05 ⇒ Ma ≈ 0.087).
    """

    n: int
    reynolds: float
    length: float = 2.0 * np.pi
    u0: float = 1.0
    u0_lattice: float = 0.05

    def __post_init__(self) -> None:
        if self.u0_lattice >= np.sqrt(CS2):
            raise ValueError("u0_lattice must be below the lattice sound speed")
        if self.reynolds <= 0:
            raise ValueError("Reynolds number must be positive")

    # ------------------------------------------------------------------
    @property
    def velocity_scale(self) -> float:
        """Physical velocity per unit lattice velocity."""
        return self.u0 / self.u0_lattice

    @property
    def length_scale(self) -> float:
        """Physical length per lattice cell."""
        return self.length / self.n

    @property
    def time_scale(self) -> float:
        """Physical time per lattice step."""
        return self.length_scale / self.velocity_scale

    @property
    def viscosity_lattice(self) -> float:
        return self.u0_lattice * self.n / self.reynolds

    @property
    def viscosity_physical(self) -> float:
        return self.u0 * self.length / self.reynolds

    @property
    def tau(self) -> float:
        """LBM relaxation time ``τ = ν_lat/c_s² + 1/2``."""
        return self.viscosity_lattice / CS2 + 0.5

    @property
    def convective_time(self) -> float:
        """``t_c = L / U0`` in physical units."""
        return self.length / self.u0

    @property
    def steps_per_convective_time(self) -> float:
        """Lattice steps per ``t_c``."""
        return self.convective_time / self.time_scale

    # ------------------------------------------------------------------
    def to_lattice_velocity(self, u_phys: np.ndarray) -> np.ndarray:
        return np.asarray(u_phys) / self.velocity_scale

    def to_physical_velocity(self, u_lat: np.ndarray) -> np.ndarray:
        return np.asarray(u_lat) * self.velocity_scale

    def to_physical_vorticity(self, omega_lat: np.ndarray) -> np.ndarray:
        """Vorticity scales inversely with time."""
        return np.asarray(omega_lat) / self.time_scale

    def steps_for_time(self, t_phys: float) -> int:
        """Lattice steps covering ``t_phys`` (rounded to nearest)."""
        return int(round(t_phys / self.time_scale))
