"""Equilibrium distributions for the D2Q9 lattice.

Two forms:

* :func:`polynomial_equilibrium` — the standard second-order Mach
  expansion used with BGK collisions.
* :func:`entropic_equilibrium` — the exact minimiser of the discrete
  H-function ``H = Σ f ln(f/w)`` under mass/momentum constraints
  (product form; Ansumali, Karlin & Öttinger 2003).  This is the
  equilibrium of the *essentially entropic* model the paper's dataset
  was produced with.

Shapes: densities ``rho`` are ``(n, n)``; velocities ``u`` are
``(2, n, n)`` in lattice units; populations are ``(Q, n, n)``.
"""

from __future__ import annotations

import numpy as np

from .lattice import CS2, Q, VELOCITIES, WEIGHTS

__all__ = ["polynomial_equilibrium", "entropic_equilibrium"]


def polynomial_equilibrium(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Second-order polynomial equilibrium.

    ``f_i^eq = w_i ρ (1 + c·u/c_s² + (c·u)²/(2c_s⁴) − u²/(2c_s²))``
    """
    cu = np.tensordot(VELOCITIES.astype(float), u, axes=(1, 0))  # (Q, n, n)
    usq = u[0] ** 2 + u[1] ** 2
    feq = WEIGHTS[:, None, None] * rho[None] * (
        1.0 + cu / CS2 + 0.5 * cu * cu / (CS2 * CS2) - 0.5 * usq[None] / CS2
    )
    return feq


def entropic_equilibrium(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Exact (product-form) entropic equilibrium.

    ``f_i^eq = ρ w_i Π_α (2 − √(1+3u_α²)) ((2u_α + √(1+3u_α²))/(1 − u_α))^{c_iα}``

    Valid for ``|u_α| < 1``; conserves mass and momentum to machine
    precision and keeps populations strictly positive.
    """
    if np.any(np.abs(u) >= 1.0):
        raise ValueError("entropic equilibrium requires |u| < 1 (lattice units)")
    feq = np.empty((Q,) + rho.shape, dtype=float)
    root = np.sqrt(1.0 + 3.0 * u * u)  # (2, n, n)
    front = 2.0 - root  # (2, n, n)
    ratio = (2.0 * u + root) / (1.0 - u)  # (2, n, n)
    base = rho * front[0] * front[1]
    for i in range(Q):
        cx, cy = VELOCITIES[i]
        term = base.copy()
        if cx:
            term = term * (ratio[0] if cx > 0 else 1.0 / ratio[0])
        if cy:
            term = term * (ratio[1] if cy > 0 else 1.0 / ratio[1])
        feq[i] = WEIGHTS[i] * term
    return feq
