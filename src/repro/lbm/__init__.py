"""Entropic lattice Boltzmann method (D2Q9) — the paper's data generator."""

from .collision import MRT_MATRIX, bgk_collide, entropic_collide, h_function, mrt_collide, solve_alpha
from .equilibrium import entropic_equilibrium, polynomial_equilibrium
from .lattice import CS2, OPPOSITE, Q, VELOCITIES, WEIGHTS
from .solver import LBMSolver2D
from .units import UnitSystem

__all__ = [
    "LBMSolver2D", "UnitSystem",
    "polynomial_equilibrium", "entropic_equilibrium",
    "bgk_collide", "entropic_collide", "mrt_collide", "MRT_MATRIX", "h_function", "solve_alpha",
    "Q", "VELOCITIES", "WEIGHTS", "CS2", "OPPOSITE",
]
