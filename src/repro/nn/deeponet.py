"""DeepONet baseline (Lu et al. 2021), discussed in paper Sec. II.

The deep operator network encodes the input function with a *branch* MLP
and the output query location with a *trunk* MLP; the prediction at a
query point is the inner product of the two feature vectors.  This is
the "unstacked" DeepONet, vectorised over a full output grid:

    u_out(c, x) = Σ_k  branch_k^{(c)}(u_in)  ·  trunk_k(x)  +  b_c

Included as the baseline operator family for the turbulence one-window
task — its branch consumes a *fixed-size* flattened grid, so unlike the
FNO it is locked to the training resolution (a known limitation the
comparison benchmark documents).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from ..utils.rng import fallback_rng
from .linear import Linear
from .module import Module, ModuleList, Parameter

__all__ = ["DeepONet2d"]


def _mlp_layers(sizes: list[int], rng, dtype) -> ModuleList:
    return ModuleList(
        Linear(sizes[i], sizes[i + 1], rng=rng, dtype=dtype) for i in range(len(sizes) - 1)
    )


def _run_mlp(layers: ModuleList, x: Tensor) -> Tensor:
    for i, layer in enumerate(layers):
        x = layer(x)
        if i < len(layers) - 1:
            x = ops.tanh(x)
    return x


class DeepONet2d(Module):
    """DeepONet for grid-to-grid maps on a periodic square.

    Parameters
    ----------
    in_channels, out_channels:
        Field channels of the input/output grids.
    grid_size:
        Training grid side length ``n`` (the branch is locked to it).
    n_basis:
        Number of branch/trunk basis functions ``p``.
    branch_hidden, trunk_hidden:
        Hidden widths (each applied twice).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        grid_size: int,
        n_basis: int = 64,
        branch_hidden: int = 128,
        trunk_hidden: int = 128,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.grid_size = int(grid_size)
        self.n_basis = int(n_basis)
        self.dtype = np.dtype(dtype)

        in_dim = in_channels * grid_size * grid_size
        self.branch = _mlp_layers(
            [in_dim, branch_hidden, branch_hidden, n_basis * out_channels], rng, dtype
        )
        # Trunk input: sin/cos embedding of the two periodic coordinates.
        self.trunk = _mlp_layers([4, trunk_hidden, trunk_hidden, n_basis], rng, dtype)
        self.bias = Parameter(np.zeros(out_channels, dtype=dtype))
        self._trunk_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _query_features(self, n: int) -> np.ndarray:
        """Periodic coordinate embedding ``(n², 4)`` for an n×n grid."""
        if n not in self._trunk_cache:
            coords = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False, dtype=self.dtype)
            X, Y = np.meshgrid(coords, coords, indexing="ij")
            feats = np.stack(
                [np.sin(X), np.cos(X), np.sin(Y), np.cos(Y)], axis=-1
            ).reshape(n * n, 4)
            self._trunk_cache[n] = feats
        return self._trunk_cache[n]

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(B, in_channels, n, n)`` to ``(B, out_channels, n, n)``.

        The branch requires ``n == grid_size``; the trunk itself would
        accept any query grid (the resolution lock is the branch's).
        """
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=self.dtype))
        B, C, n1, n2 = x.shape
        if C != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {C}")
        if n1 != self.grid_size or n2 != self.grid_size:
            raise ValueError(
                f"DeepONet branch is locked to its training grid "
                f"{self.grid_size}²; got {n1}×{n2}"
            )

        flat = ops.reshape(x, (B, C * n1 * n2))
        branch_out = _run_mlp(self.branch, flat)  # (B, p*C_out)
        branch_out = ops.reshape(branch_out, (B, self.out_channels, self.n_basis))

        trunk_in = Tensor(self._query_features(n1))
        trunk_out = _run_mlp(self.trunk, trunk_in)  # (n², p)

        out = ops.einsum("bcp,qp->bcq", branch_out, trunk_out)
        out = out + ops.reshape(self.bias, (1, self.out_channels, 1))
        return ops.reshape(out, (B, self.out_channels, n1, n2))
