"""Training losses.

* :class:`LpLoss` — relative Lp norm, the standard FNO training loss and
  the error metric reported throughout the paper.
* :class:`MSELoss` — plain mean squared error.
* :class:`H1Loss` — Sobolev loss that also penalises first-derivative
  (periodic central-difference) mismatch.  Implements the paper's
  future-work remark that the enstrophy error grows because "the model
  lacks any explicit mechanism to learn gradients".
* :class:`DivergenceLoss` — adds a ``‖∇·u‖²`` penalty; the paper observes
  FNO predictions are not divergence-free because incompressibility was
  not incorporated in the loss.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from .module import Module

__all__ = ["LpLoss", "MSELoss", "H1Loss", "DivergenceLoss"]


def _flatten_per_sample(x: Tensor) -> Tensor:
    return ops.reshape(x, (x.shape[0], -1))


class LpLoss(Module):
    """Relative Lp loss averaged over the batch.

    ``loss = mean_b ( ||pred_b - true_b||_p / ||true_b||_p )``

    Only ``p = 2`` is differentiable end-to-end here (the paper uses
    relative L2 exclusively).
    """

    def __init__(self, p: int = 2, eps: float = 1e-12):
        super().__init__()
        if p != 2:
            raise NotImplementedError("only p=2 is supported")
        self.p = p
        self.eps = eps

    def forward(self, pred: Tensor, true: Tensor) -> Tensor:
        diff = _flatten_per_sample(pred - true)
        ref = _flatten_per_sample(true)
        num = ops.sqrt(ops.sum_(ops.square(diff), axis=1) + self.eps)
        den = ops.sqrt(ops.sum_(ops.square(ref), axis=1) + self.eps)
        return ops.mean(num / den)


class MSELoss(Module):
    def forward(self, pred: Tensor, true: Tensor) -> Tensor:
        return ops.mean(ops.square(pred - true))


def _central_diff(x: Tensor, axis: int) -> Tensor:
    """Periodic central difference along ``axis`` (unit grid spacing)."""
    return (ops.roll(x, -1, axis) - ops.roll(x, 1, axis)) * 0.5


class H1Loss(Module):
    """Relative H1 (Sobolev) loss on fields over the trailing two axes.

    ``loss = rel_L2(pred, true) + weight * rel_L2(∇pred, ∇true)`` with the
    gradient taken by periodic central differences over the last two
    (spatial) axes.
    """

    def __init__(self, weight: float = 1.0, eps: float = 1e-12):
        super().__init__()
        self.weight = float(weight)
        self.eps = eps
        self._l2 = LpLoss(eps=eps)

    def forward(self, pred: Tensor, true: Tensor) -> Tensor:
        loss = self._l2(pred, true)
        for axis in (-2, -1):
            loss = loss + self.weight * self._l2(_central_diff(pred, axis), _central_diff(true, axis))
        return loss


class DivergenceLoss(Module):
    """Relative L2 plus an incompressibility penalty.

    Expects predictions whose channel axis interleaves velocity components
    as ``(..., 2k, ...) = u_x`` and ``(..., 2k+1, ...) = u_y`` for each
    predicted snapshot ``k``; the penalty is the mean square of
    ``∂u_x/∂x + ∂u_y/∂y`` computed with periodic central differences.
    """

    def __init__(self, weight: float = 0.1, eps: float = 1e-12):
        super().__init__()
        self.weight = float(weight)
        self._l2 = LpLoss(eps=eps)

    def divergence(self, pred: Tensor) -> Tensor:
        """Pointwise divergence per snapshot, shape ``(B, n_snap, n1, n2)``."""
        if pred.shape[1] % 2 != 0:
            raise ValueError("channel axis must hold (u_x, u_y) pairs")
        ux = pred[:, 0::2]
        uy = pred[:, 1::2]
        return _central_diff(ux, -2) + _central_diff(uy, -1)

    def forward(self, pred: Tensor, true: Tensor) -> Tensor:
        return self._l2(pred, true) + self.weight * ops.mean(ops.square(self.divergence(pred)))
