"""Dense layers acting on the channel axis.

All FNO tensors use the channel-first layout ``(batch, channels, *grid)``,
so the "fully connected" layers of the reference implementation become
pointwise (1×1 convolution style) channel mixes, implemented with einsum.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor, ops
from ..utils.rng import fallback_rng
from .module import Module, Parameter

__all__ = ["ChannelLinear", "Linear", "ChannelMLP"]


def _kaiming_uniform(rng: np.random.Generator, fan_in: int, shape, dtype) -> np.ndarray:
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


class ChannelLinear(Module):
    """Pointwise linear map over the channel axis (axis 1).

    Input ``(B, C_in, *grid)`` → output ``(B, C_out, *grid)``; equivalent
    to a 1×1 convolution.  Used for the FNO lifting, the per-layer local
    (bypass) transform, and the projection head.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            _kaiming_uniform(rng, in_channels, (in_channels, out_channels), dtype)
        )
        self.bias = Parameter(_kaiming_uniform(rng, in_channels, (out_channels,), dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {x.shape[1]}")
        return ops.channel_linear(x, self.weight, self.bias)


class Linear(Module):
    """Standard dense layer on the *last* axis: ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_uniform(rng, in_features, (in_features, out_features), dtype)
        )
        self.bias = Parameter(_kaiming_uniform(rng, in_features, (out_features,), dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class ChannelMLP(Module):
    """Two-layer pointwise MLP over channels, the FNO projection head.

    The hidden nonlinearity defaults to GELU (reference architecture) but
    can be any of ``"gelu"``, ``"relu"``, ``"tanh"``.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int,
        out_channels: int,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        from .fno import _resolve_activation  # local import: avoids a cycle

        self.activation = str(activation)
        self._act = _resolve_activation(self.activation)
        self.fc1 = ChannelLinear(in_channels, hidden_channels, rng=rng, dtype=dtype)
        self.fc2 = ChannelLinear(hidden_channels, out_channels, rng=rng, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self._act(self.fc1(x)))
