"""Neural network building blocks (NumPy autograd backed).

Provides a PyTorch-flavoured Module system, spectral convolution layers,
and the two FNO architectures studied in the paper.
"""

from .activations import GELU, Identity, ReLU, Sigmoid, Tanh, get_activation
from .deeponet import DeepONet2d
from .fno import FNO1d, FNO2d, FNO3d
from .linear import ChannelLinear, ChannelMLP, Linear
from .losses import DivergenceLoss, H1Loss, LpLoss, MSELoss
from .module import Module, ModuleList, Parameter, Sequential
from .spectral import SolenoidalProjection2d, SpectralConv1d, SpectralConv2d, SpectralConv3d

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList",
    "Linear", "ChannelLinear", "ChannelMLP",
    "SpectralConv1d", "SpectralConv2d", "SpectralConv3d", "SolenoidalProjection2d",
    "FNO1d", "FNO2d", "FNO3d", "DeepONet2d",
    "GELU", "ReLU", "Tanh", "Sigmoid", "Identity", "get_activation",
    "LpLoss", "MSELoss", "H1Loss", "DivergenceLoss",
]
