"""Fourier neural operator architectures.

Two models, matching Sec. V of the paper:

* :class:`FNO2d` — "2D FNO with temporal channels": Fourier modes over the
  two spatial axes, time snapshots stacked along the channel axis in
  chronological order (input channels = input snapshots × fields, output
  channels = output snapshots × fields).
* :class:`FNO3d` — Fourier modes over two space axes and one time axis;
  space and time are treated on the same footing.

Both follow the reference architecture: channel lifting, ``n_layers``
Fourier blocks (spectral convolution + pointwise linear bypass, GELU
between blocks), and a two-layer pointwise projection head.  Normalised
grid coordinates are appended to the input channels (2 for FNO2d, 3 for
FNO3d) as in the original implementation.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from ..utils.rng import fallback_rng
from .linear import ChannelLinear, ChannelMLP
from .module import Module, ModuleList
from .spectral import SolenoidalProjection2d, SpectralConv1d, SpectralConv2d, SpectralConv3d

__all__ = ["FNO1d", "FNO2d", "FNO3d"]

_ACTIVATIONS = {"gelu": ops.gelu, "relu": ops.relu, "tanh": ops.tanh}


def _resolve_activation(name: str):
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r} (choose from {sorted(_ACTIVATIONS)})"
        ) from None


class FNO1d(Module):
    """1-D Fourier neural operator (canonical Burgers benchmark).

    Maps ``(B, in_channels, n)`` to ``(B, out_channels, n)``; a
    normalised coordinate channel is appended when ``append_grid``.
    """

    def __init__(
        self,
        in_channels: int = 1,
        out_channels: int = 1,
        modes: int = 16,
        width: int = 32,
        n_layers: int = 4,
        projection_channels: int = 128,
        append_grid: bool = True,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = int(modes)
        self.width = int(width)
        self.n_layers = int(n_layers)
        self.append_grid = bool(append_grid)
        self.dtype = np.dtype(dtype)

        lift_in = in_channels + (1 if append_grid else 0)
        self.lifting = ChannelLinear(lift_in, width, rng=rng, dtype=dtype)
        self.spectral_layers = ModuleList(
            SpectralConv1d(width, width, modes, rng=rng, dtype=dtype)
            for _ in range(self.n_layers)
        )
        self.local_layers = ModuleList(
            ChannelLinear(width, width, rng=rng, dtype=dtype) for _ in range(self.n_layers)
        )
        self.projection = ChannelMLP(width, projection_channels, out_channels, rng=rng, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=self.dtype))
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {x.shape[1]}")
        if self.append_grid:
            B, _, n = x.shape
            grid = np.broadcast_to(
                np.linspace(0.0, 1.0, n, endpoint=False, dtype=self.dtype)[None, None, :],
                (B, 1, n),
            )
            x = ops.concatenate([x, Tensor(grid.copy())], axis=1)
        h = self.lifting(x)
        for i in range(self.n_layers):
            h = self.spectral_layers[i](h) + self.local_layers[i](h)
            if i < self.n_layers - 1:
                h = ops.gelu(h)
        return self.projection(h)


def _grid_2d(n1: int, n2: int, dtype) -> np.ndarray:
    """Normalised coordinates, shape ``(2, n1, n2)`` with values in [0, 1)."""
    gx = np.linspace(0.0, 1.0, n1, endpoint=False, dtype=dtype)
    gy = np.linspace(0.0, 1.0, n2, endpoint=False, dtype=dtype)
    return np.stack(np.meshgrid(gx, gy, indexing="ij"), axis=0)


def _grid_3d(n1: int, n2: int, n3: int, dtype) -> np.ndarray:
    """Normalised coordinates, shape ``(3, n1, n2, n3)``; time in [0, 1]."""
    gx = np.linspace(0.0, 1.0, n1, endpoint=False, dtype=dtype)
    gy = np.linspace(0.0, 1.0, n2, endpoint=False, dtype=dtype)
    gt = np.linspace(0.0, 1.0, n3, dtype=dtype)
    return np.stack(np.meshgrid(gx, gy, gt, indexing="ij"), axis=0)


class FNO2d(Module):
    """2-D Fourier neural operator with temporal channels.

    Parameters
    ----------
    in_channels:
        Input snapshot channels (e.g. 10 time snapshots × fields).
    out_channels:
        Output snapshot channels (the paper varies this over 1/5/10).
    modes1, modes2:
        Retained Fourier modes per spatial axis.
    width:
        Hidden channel count of the Fourier blocks.
    n_layers:
        Number of Fourier blocks (paper default 4).
    projection_channels:
        Hidden width of the projection head (reference default 128).
    append_grid:
        Append 2 normalised coordinate channels to the input.
    divergence_free:
        Append a parameter-free Leray projection so predictions are
        divergence-free by construction (requires the channel axis to
        hold (u_x, u_y) pairs).  Implements the architectural fix for
        the paper's Fig.-8 observation.
    activation:
        Nonlinearity between Fourier blocks and inside the projection
        head: ``"gelu"`` (reference default), ``"relu"``, or ``"tanh"``.
        On CPU serving, ``relu`` avoids the per-element ``erf`` cost of
        GELU, which dominates small-width forwards.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes1: int = 12,
        modes2: int = 12,
        width: int = 32,
        n_layers: int = 4,
        projection_channels: int = 128,
        append_grid: bool = True,
        divergence_free: bool = False,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes1, self.modes2 = int(modes1), int(modes2)
        self.width = int(width)
        self.n_layers = int(n_layers)
        self.append_grid = bool(append_grid)
        self.activation = str(activation)
        self._act = _resolve_activation(self.activation)
        self.dtype = np.dtype(dtype)
        self._grid_cache: dict[tuple[int, int], np.ndarray] = {}

        if divergence_free and out_channels % 2 != 0:
            raise ValueError("divergence_free requires (u_x, u_y) channel pairs")
        self.divergence_free = bool(divergence_free)
        self._output_projection = SolenoidalProjection2d() if divergence_free else None

        lift_in = in_channels + (2 if append_grid else 0)
        self.lifting = ChannelLinear(lift_in, width, rng=rng, dtype=dtype)
        self.spectral_layers = ModuleList(
            SpectralConv2d(width, width, modes1, modes2, rng=rng, dtype=dtype)
            for _ in range(self.n_layers)
        )
        self.local_layers = ModuleList(
            ChannelLinear(width, width, rng=rng, dtype=dtype) for _ in range(self.n_layers)
        )
        self.projection = ChannelMLP(
            width, projection_channels, out_channels,
            activation=self.activation, rng=rng, dtype=dtype,
        )

    # ------------------------------------------------------------------
    def _with_grid(self, x: Tensor) -> Tensor:
        if not self.append_grid:
            return x
        B, _, n1, n2 = x.shape
        key = (n1, n2)
        if key not in self._grid_cache:
            self._grid_cache[key] = _grid_2d(n1, n2, self.dtype)
        grid = np.broadcast_to(self._grid_cache[key], (B, 2, n1, n2))
        return ops.concatenate([x, Tensor(grid.copy())], axis=1)

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(B, in_channels, n1, n2)`` to ``(B, out_channels, n1, n2)``."""
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=self.dtype))
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {x.shape[1]}")
        h = self.lifting(self._with_grid(x))
        for i in range(self.n_layers):
            h = self.spectral_layers[i](h) + self.local_layers[i](h)
            if i < self.n_layers - 1:
                h = self._act(h)
        out = self.projection(h)
        if self._output_projection is not None:
            out = self._output_projection(out)
        return out


class FNO3d(Module):
    """Space–time Fourier neural operator.

    Maps ``(B, in_channels, n1, n2, n_t)`` to
    ``(B, out_channels, n1, n2, n_t)``; the temporal axis is zero-padded
    by ``time_padding`` points before the Fourier blocks (time is not
    periodic) and cropped afterwards.
    """

    def __init__(
        self,
        in_channels: int = 1,
        out_channels: int = 1,
        modes1: int = 8,
        modes2: int = 8,
        modes3: int = 4,
        width: int = 8,
        n_layers: int = 4,
        projection_channels: int = 128,
        time_padding: int = 4,
        append_grid: bool = True,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes1, self.modes2, self.modes3 = int(modes1), int(modes2), int(modes3)
        self.width = int(width)
        self.n_layers = int(n_layers)
        self.time_padding = int(time_padding)
        self.append_grid = bool(append_grid)
        self.dtype = np.dtype(dtype)
        self._grid_cache: dict[tuple[int, int, int], np.ndarray] = {}

        lift_in = in_channels + (3 if append_grid else 0)
        self.lifting = ChannelLinear(lift_in, width, rng=rng, dtype=dtype)
        self.spectral_layers = ModuleList(
            SpectralConv3d(width, width, modes1, modes2, modes3, rng=rng, dtype=dtype)
            for _ in range(self.n_layers)
        )
        self.local_layers = ModuleList(
            ChannelLinear(width, width, rng=rng, dtype=dtype) for _ in range(self.n_layers)
        )
        self.projection = ChannelMLP(width, projection_channels, out_channels, rng=rng, dtype=dtype)

    # ------------------------------------------------------------------
    def _with_grid(self, x: Tensor) -> Tensor:
        if not self.append_grid:
            return x
        B, _, n1, n2, n3 = x.shape
        key = (n1, n2, n3)
        if key not in self._grid_cache:
            self._grid_cache[key] = _grid_3d(n1, n2, n3, self.dtype)
        grid = np.broadcast_to(self._grid_cache[key], (B, 3, n1, n2, n3))
        return ops.concatenate([x, Tensor(grid.copy())], axis=1)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=self.dtype))
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {x.shape[1]}")
        h = self.lifting(self._with_grid(x))
        if self.time_padding:
            pad_width = [(0, 0)] * (h.ndim - 1) + [(0, self.time_padding)]
            h = ops.pad(h, pad_width)
        for i in range(self.n_layers):
            h = self.spectral_layers[i](h) + self.local_layers[i](h)
            if i < self.n_layers - 1:
                h = ops.gelu(h)
        if self.time_padding:
            h = h[..., : -self.time_padding]
        return self.projection(h)
