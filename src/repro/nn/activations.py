"""Activation modules (thin wrappers over the tensor ops)."""

from __future__ import annotations

from ..tensor import Tensor, ops
from .module import Module

__all__ = ["GELU", "ReLU", "Tanh", "Sigmoid", "Identity", "get_activation"]


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS = {"gelu": GELU, "relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid, "identity": Identity}


def get_activation(name: str) -> Module:
    """Build an activation module from its lowercase name."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}") from None
