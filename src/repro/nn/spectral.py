"""Spectral convolution modules — the Fourier layers of the FNO.

Complex mode weights are stored as separate real/imaginary
:class:`Parameter` arrays (the autograd engine is real-valued); the fused
forward/backward lives in :mod:`repro.tensor.fft_ops`.

Initialisation follows the reference ``neuraloperator`` implementation:
``scale * U[0, 1)`` with ``scale = 1 / (in_channels * out_channels)``.
"""

from __future__ import annotations

import numpy as np

from ..tensor import (
    Tensor,
    solenoidal_projection_2d,
    spectral_conv1d,
    spectral_conv2d,
    spectral_conv3d,
)
from ..utils.rng import fallback_rng
from .module import Module, Parameter

__all__ = ["SpectralConv1d", "SpectralConv2d", "SpectralConv3d", "SolenoidalProjection2d"]


class SpectralConv1d(Module):
    """1-D Fourier layer: rFFT → truncate → mode-mix → irFFT.

    For 1-D operator-learning problems (the canonical Burgers benchmark
    of the original FNO paper).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes: int,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes = int(modes)
        scale = 1.0 / (in_channels * out_channels)
        shape = (in_channels, out_channels, self.modes)
        self.weight_real = Parameter((scale * rng.random(shape)).astype(dtype))
        self.weight_imag = Parameter((scale * rng.random(shape)).astype(dtype))

    def forward(self, x: Tensor) -> Tensor:
        return spectral_conv1d(x, self.weight_real, self.weight_imag, self.modes)


class SolenoidalProjection2d(Module):
    """Parameter-free layer projecting velocity pairs divergence-free.

    Addresses the paper's Fig.-8 observation that raw FNO predictions are
    not divergence-free: appending this layer makes incompressibility an
    architectural guarantee rather than a loss-term suggestion.  Expects
    the temporal-channel layout (channel axis = snapshots × (u_x, u_y)).
    """

    def __init__(self, length: float = 2.0 * np.pi):
        super().__init__()
        self.length = float(length)

    def forward(self, x: Tensor) -> Tensor:
        return solenoidal_projection_2d(x, self.length)


class SpectralConv2d(Module):
    """2-D Fourier layer: rFFT → truncate to low modes → mode-mix → irFFT.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the mixed feature maps.
    modes1, modes2:
        Retained Fourier modes along the two spatial axes.  ``modes1``
        counts both sign blocks of the full first axis (the layer keeps
        ``k1 ∈ [0, modes1) ∪ (-modes1, 0]``); ``modes2`` counts bins of
        the half spectrum along the second axis.
    """

    n_blocks = 2

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes1: int,
        modes2: int,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes1 = int(modes1)
        self.modes2 = int(modes2)
        scale = 1.0 / (in_channels * out_channels)
        shape = (self.n_blocks, in_channels, out_channels, self.modes1, self.modes2)
        self.weight_real = Parameter((scale * rng.random(shape)).astype(dtype))
        self.weight_imag = Parameter((scale * rng.random(shape)).astype(dtype))

    def forward(self, x: Tensor) -> Tensor:
        return spectral_conv2d(x, self.weight_real, self.weight_imag, self.modes1, self.modes2)


class SpectralConv3d(Module):
    """3-D Fourier layer over two space axes plus one time axis.

    ``modes1``/``modes2`` count both sign blocks of the two full axes;
    ``modes3`` counts half-spectrum bins of the last (time) axis.
    """

    n_blocks = 4

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        modes1: int,
        modes2: int,
        modes3: int,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        rng = fallback_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.modes1 = int(modes1)
        self.modes2 = int(modes2)
        self.modes3 = int(modes3)
        scale = 1.0 / (in_channels * out_channels)
        shape = (self.n_blocks, in_channels, out_channels, self.modes1, self.modes2, self.modes3)
        self.weight_real = Parameter((scale * rng.random(shape)).astype(dtype))
        self.weight_imag = Parameter((scale * rng.random(shape)).astype(dtype))

    def forward(self, x: Tensor) -> Tensor:
        return spectral_conv3d(
            x, self.weight_real, self.weight_imag, self.modes1, self.modes2, self.modes3
        )
