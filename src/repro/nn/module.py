"""Module/Parameter system for building neural networks.

Mirrors the PyTorch ``nn.Module`` conventions closely enough that the FNO
architectures read like their reference implementations: parameters and
submodules registered by attribute assignment, ``state_dict`` /
``load_state_dict`` for checkpointing, ``train()``/``eval()`` modes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A Tensor that is a trainable leaf of a :class:`Module`."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules.

    Subclasses define parameters/submodules in ``__init__`` by plain
    attribute assignment and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters.

        Complex spectral weights are stored as separate real and imaginary
        arrays, so a complex mode weight counts as two scalars here (one
        per real degree of freedom).
        """
        return sum(p.numel() for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted names."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True,
                        copy: bool = True) -> None:
        """Install parameter arrays from ``state``.

        ``copy=False`` adopts the given arrays directly (when dtype and
        shape already match) instead of copying — this is how serve
        worker processes mount read-only shared-memory weight views
        zero-copy.  Inference never writes parameters in place, and a
        read-only array makes any future in-place write a loud error
        rather than silent cross-process corruption.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if name not in own:
                continue
            param = own[name]
            value = np.asarray(value, dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"parameter {name!r}: shape {value.shape} != {param.data.shape}")
            param.data = value.copy() if copy else value

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(self._modules) or ", ".join(self._parameters)
        return f"{type(self).__name__}({inner})"


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = []
        for i, m in enumerate(modules):
            setattr(self, f"m{i}", m)
            self._items.append(m)

    def forward(self, x):
        for m in self._items:
            x = m(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: int) -> Module:
        return self._items[i]


# repro: ignore[RPR004] -- pure container: iterated by owners, never called
class ModuleList(Module):
    """List-like container whose entries are registered submodules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"m{len(self._items)}", module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i: int) -> Module:
        return self._items[i]
