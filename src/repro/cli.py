"""Command-line interface.

The subcommands cover the paper's workflow end to end, plus deployment
and observability::

    python -m repro.cli generate --grid 32 --samples 8 --out data.npz
    python -m repro.cli train    --data data.npz --epochs 30 --out model.npz
    python -m repro.cli rollout  --data data.npz --model model.npz --mode hybrid
    python -m repro.cli analyze  --data data.npz
    python -m repro.cli analyze  src --format json
    python -m repro.cli inspect  model.npz
    python -m repro.cli serve    --model tiny=model.npz --port 8764
    python -m repro.cli fleet    up --model tiny=model.npz --replicas 3
    python -m repro.cli run      --workdir runs/a --grid 16 --epochs 3
    python -m repro.cli resume   --workdir runs/a
    python -m repro.cli verify   --workdir runs/a
    python -m repro.cli trace    run.trace.jsonl
    python -m repro.cli profile  benchmarks/bench_fig2_separation.py
    python -m repro.cli chaos    --seed-matrix 3
    python -m repro.cli trust    --model model.npz --data data.npz

Every option has a CPU-friendly default; the paper-scale settings are
plain flag values away (``--grid 256 --reynolds 7500 --samples 5000``).
Setting ``REPRO_OBS=trace.jsonl`` (and optionally ``REPRO_OBS_PROFILE=1``)
turns on span tracing for any subcommand; ``REPRO_FAULTS`` (inline JSON
or a path to a fault-plan file) arms deterministic fault injection.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FNO + 2-D turbulence reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a turbulence dataset shard")
    g.add_argument("--grid", type=int, default=32)
    g.add_argument("--reynolds", type=float, default=800.0)
    g.add_argument("--samples", type=int, default=8)
    g.add_argument("--warmup", type=float, default=0.3)
    g.add_argument("--duration", type=float, default=0.6)
    g.add_argument("--interval", type=float, default=0.02)
    g.add_argument("--solver", choices=["lbm", "spectral", "fd"], default="spectral")
    g.add_argument("--ic", choices=["uniform", "band"], default="band")
    g.add_argument("--forcing", choices=["none", "kolmogorov", "ring"], default="none")
    g.add_argument("--workers", type=int, default=1)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--out", default="dataset.npz")
    g.add_argument("--shards", type=int, default=0, metavar="S",
                   help="write shards of S samples each into the --out directory "
                        "instead of one file (for datasets too large for memory)")

    t = sub.add_parser("train", help="train a temporal-channel FNO on a shard")
    t.add_argument("--data", required=True)
    t.add_argument("--n-in", type=int, default=5)
    t.add_argument("--n-out", type=int, default=5)
    t.add_argument("--modes", type=int, default=8)
    t.add_argument("--width", type=int, default=16)
    t.add_argument("--layers", type=int, default=3)
    t.add_argument("--epochs", type=int, default=30)
    t.add_argument("--batch-size", type=int, default=8)
    t.add_argument("--lr", type=float, default=3e-3)
    t.add_argument("--scheduler-step", type=int, default=10)
    t.add_argument("--scheduler-gamma", type=float, default=0.5)
    t.add_argument("--loss", choices=["l2", "mse", "h1", "divergence"], default="l2")
    t.add_argument("--test-fraction", type=float, default=0.25)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--batch-workers", type=int, default=0,
                   help="assemble training batches in a process pool "
                        "(>=2 enables it; bitwise-identical to serial)")
    t.add_argument("--out", default="model.npz")

    r = sub.add_parser("rollout", help="roll a trained model out (pure or hybrid)")
    r.add_argument("--data", required=True, help="shard providing the initial window")
    r.add_argument("--model", required=True)
    r.add_argument("--mode", choices=["fno", "hybrid", "pde"], default="hybrid")
    r.add_argument("--cycles", type=int, default=3, help="hybrid cycles (or window count)")
    r.add_argument("--sample", type=int, default=0, help="trajectory index for the window")
    r.add_argument("--reynolds", type=float, default=None,
                   help="PDE viscosity via Re (default: shard metadata or 800)")

    a = sub.add_parser(
        "analyze",
        help="whole-program static analysis (or dataset statistics with --data)",
    )
    a.add_argument("--data", default=None,
                   help="dataset .npz: print statistics/Lyapunov estimate "
                        "instead of running static analysis")
    a.add_argument("--lyapunov", action="store_true", help="also estimate the Lyapunov time")
    from repro.analyze.cli import add_analyze_arguments

    add_analyze_arguments(a)

    i = sub.add_parser("inspect", help="print a checkpoint's config/version/normalizer")
    i.add_argument("checkpoint", help="path to a model .npz saved by repro train")

    s = sub.add_parser("serve", help="serve checkpoints over JSON-HTTP with micro-batching")
    s.add_argument("--model", action="append", default=[], metavar="NAME=PATH",
                   help="register a checkpoint under NAME (or give a bare PATH; repeatable)")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8764, help="0 picks a free port")
    s.add_argument("--max-batch", type=int, default=8,
                   help="most requests coalesced into one forward pass")
    s.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="batching window: extra latency the first request of a batch tolerates")
    s.add_argument("--queue-depth", type=int, default=64,
                   help="bounded queue size; beyond it /predict answers 503 + Retry-After")
    s.add_argument("--serve-workers", type=int, default=2, help="worker threads")
    s.add_argument("--proc", action="store_true",
                   help="back the workers with a process pool (GIL-free compute, "
                        "zero-copy shared-memory weights, one pool child per "
                        "worker thread)")
    s.add_argument("--capacity", type=int, default=4, help="models kept loaded (LRU)")
    s.add_argument("--require-manifest", action="store_true",
                   help="refuse models without a verifiable integrity manifest "
                        "(`repro run` artifacts always have one)")
    s.add_argument("--default-mode", choices=["hybrid", "fno"], default="hybrid",
                   help="rollout mode when a request does not specify one")
    s.add_argument("--solver", choices=["fd", "spectral"], default="fd",
                   help="PDE solver backing hybrid-mode requests")
    s.add_argument("--non-deterministic", action="store_true",
                   help="allow batch-size-dependent last-ulp differences for a faster "
                        "mode-mixing einsum")
    s.add_argument("--trust", nargs="?", const="default", metavar="POLICY_JSON",
                   help="attach per-request physics diagnostics, ensemble UQ, and a "
                        "trust verdict to every /predict response; pass a "
                        "`repro trust` calibration JSON for tuned thresholds, or "
                        "no value for the report-only defaults")
    s.add_argument("--verbose", action="store_true", help="log every HTTP request")
    s.add_argument("--replica-id", default="", metavar="ID",
                   help="fleet replica identity reported in /healthz")
    s.add_argument("--announce", default=None, metavar="PATH",
                   help="atomically write {replica_id, host, port, pid} JSON "
                        "after binding (fleet coordinators read the port back)")
    s.add_argument("--heartbeat", default=None, metavar="PATH",
                   help="emit supervisor heartbeats (atomic JSON) on PATH")
    s.add_argument("--drain-grace", type=float, default=10.0, metavar="S",
                   help="seconds SIGTERM lets in-flight requests finish "
                        "before the replica exits")

    from repro.jobs.cli import (
        add_resume_arguments,
        add_run_arguments,
        add_verify_arguments,
    )

    run = sub.add_parser(
        "run", help="run the journaled data→train→rollout pipeline in a workdir"
    )
    add_run_arguments(run)

    res = sub.add_parser(
        "resume", help="resume an interrupted pipeline from its journal"
    )
    add_resume_arguments(res)

    v = sub.add_parser(
        "verify", help="verify artifact integrity manifests (checksum + lineage)"
    )
    add_verify_arguments(v)

    co = sub.add_parser(
        "compile", help="trace a checkpoint and print its inference plan"
    )
    from repro.compile.cli import add_compile_arguments

    add_compile_arguments(co)

    c = sub.add_parser("check", help="run the repro static-analysis rule pack")
    from repro.checks.cli import add_check_arguments

    add_check_arguments(c)

    ch = sub.add_parser("chaos", help="run the fault-injection chaos scenario matrix")
    from repro.faults.cli import add_chaos_arguments

    add_chaos_arguments(ch)

    tu = sub.add_parser(
        "trust", help="calibrate trust-policy thresholds against a labelled dataset"
    )
    from repro.trust.cli import add_trust_arguments

    add_trust_arguments(tu)

    fl = sub.add_parser(
        "fleet", help="supervised multi-replica serving behind a health-routing gateway"
    )
    from repro.fleet.cli import add_fleet_arguments

    add_fleet_arguments(fl)

    from repro.obs.cli import add_profile_arguments, add_trace_arguments

    tr = sub.add_parser("trace", help="render the span tree of a JSONL trace")
    add_trace_arguments(tr)

    p = sub.add_parser("profile", help="run a script under obs instrumentation")
    add_profile_arguments(p)
    return parser


# ---------------------------------------------------------------------------


def _cmd_generate(args) -> int:
    from repro.data import DataGenConfig, generate_dataset, save_samples

    config = DataGenConfig(
        n=args.grid, reynolds=args.reynolds, n_samples=args.samples,
        warmup=args.warmup, duration=args.duration, sample_interval=args.interval,
        solver=args.solver, ic=args.ic, seed=args.seed, forcing=args.forcing,
    )
    if args.shards > 0:
        from repro.data import generate_sharded_dataset

        paths = generate_sharded_dataset(config, args.out, samples_per_shard=args.shards,
                                         n_workers=args.workers)
        print(f"wrote {config.n_samples} trajectories into {len(paths)} shards under {args.out}")
        return 0
    samples = generate_dataset(config, n_workers=args.workers)
    save_samples(args.out, samples, metadata={
        "grid": args.grid, "reynolds": args.reynolds, "solver": args.solver,
        "interval_tc": args.interval, "forcing": args.forcing,
    })
    print(f"wrote {len(samples)} trajectories ({config.n_snapshots} snapshots each) to {args.out}")
    return 0


def _cmd_train(args) -> int:
    from repro.analysis import per_snapshot_relative_l2
    from repro.core import ChannelFNOConfig, Trainer, TrainingConfig, build_fno2d_channels, save_model
    from repro.data import (
        FieldNormalizer,
        load_samples,
        make_channel_pairs,
        stack_fields,
        train_test_split_samples,
    )
    from repro.tensor import Tensor, no_grad

    samples, _ = load_samples(args.data)
    n_test = max(1, int(round(args.test_fraction * len(samples))))
    if n_test >= len(samples):
        print("error: dataset too small for the requested test fraction", file=sys.stderr)
        return 2
    train_s, test_s = train_test_split_samples(samples, n_test=n_test,
                                               rng=np.random.default_rng(args.seed))
    X, Y = make_channel_pairs(stack_fields(train_s, "velocity"), args.n_in, args.n_out)
    Xt, Yt = make_channel_pairs(stack_fields(test_s, "velocity"), args.n_in, args.n_out)
    normalizer = FieldNormalizer(n_fields=2).fit(X)

    model_config = ChannelFNOConfig(
        n_in=args.n_in, n_out=args.n_out, n_fields=2,
        modes1=args.modes, modes2=args.modes, width=args.width, n_layers=args.layers,
    )
    model = build_fno2d_channels(model_config, rng=np.random.default_rng(args.seed))
    print(f"training FNO2d ({model.num_parameters():,} parameters) on {X.shape[0]} pairs ...")
    trainer = Trainer(model, TrainingConfig(
        epochs=args.epochs, batch_size=args.batch_size, learning_rate=args.lr,
        scheduler_step=args.scheduler_step, scheduler_gamma=args.scheduler_gamma,
        loss=args.loss, seed=args.seed,
    ))
    trainer.fit(normalizer.encode(X), normalizer.encode(Y),
                normalizer.encode(Xt), normalizer.encode(Yt),
                log_every=max(args.epochs // 6, 1),
                batch_workers=args.batch_workers)

    with no_grad():
        pred = normalizer.decode(model(Tensor(normalizer.encode(Xt))).numpy())
    errs = per_snapshot_relative_l2(pred, Yt, n_fields=2)
    print("test per-snapshot rel. L2:", " ".join(f"{e:.4f}" for e in errs))
    save_model(args.out, model, model_config, normalizer)
    print(f"model saved to {args.out}")
    return 0


def _cmd_rollout(args) -> int:
    from repro.core import (
        HybridConfig,
        HybridFNOPDE,
        load_model,
        run_pure_fno,
        run_pure_pde,
    )
    from repro.data import load_samples
    from repro.ns import FDNSSolver2D

    samples, meta = load_samples(args.data)
    model, config, normalizer = load_model(args.model)
    sample = samples[args.sample]
    window = sample.velocity[: config.n_in]
    dt = float(sample.times[1] - sample.times[0])
    reynolds = args.reynolds or float(meta.get("reynolds", 800.0))
    n = sample.grid_size
    nu = 2 * np.pi / reynolds

    hycfg = HybridConfig(n_in=config.n_in, n_out=config.n_out, n_fields=2,
                         sample_interval=dt, n_cycles=args.cycles)
    if args.mode == "hybrid":
        record = HybridFNOPDE(model, FDNSSolver2D(n, nu), hycfg, normalizer=normalizer).run(window)
    elif args.mode == "fno":
        record = run_pure_fno(model, window, n_snapshots=args.cycles * (config.n_in + config.n_out),
                              n_fields=2, normalizer=normalizer, sample_interval=dt)
    else:
        record = run_pure_pde(FDNSSolver2D(n, nu), window,
                              n_snapshots=args.cycles * (config.n_in + config.n_out),
                              sample_interval=dt)
    d = record.diagnostics()
    print(f"{'t/t_c':>7} {'KE':>10} {'enstrophy':>11} {'rms div':>10}  source")
    for i in range(0, record.n_snapshots, max(1, record.n_snapshots // 15)):
        print(f"{d['times'][i]:7.3f} {d['kinetic_energy'][i]:10.5f} "
              f"{d['enstrophy'][i]:11.5f} {d['rms_divergence'][i]:10.2e}  {record.source[i]}")
    return 0


def _cmd_analyze(args) -> int:
    if args.data is None:
        from repro.analyze.cli import run_analyze

        return run_analyze(args)

    from repro.analysis import correlation_coefficient, l2_separation, std_evolution
    from repro.data import load_samples

    samples, meta = load_samples(args.data)
    print(f"{len(samples)} trajectories, grid {samples[0].grid_size}^2, "
          f"{samples[0].n_snapshots} snapshots, metadata {meta}")
    print(f"{'id':>4} {'Re(0)':>8} {'std ω(0)':>9} {'std ω(T)':>9} {'sep(T)':>8} {'corr(T)':>8}")
    for s in samples:
        stds = std_evolution(s.vorticity)
        sep = l2_separation(s.vorticity)
        corr = correlation_coefficient(s.vorticity)
        print(f"{s.sample_id:>4} {s.reynolds:8.0f} {stds[0]:9.4f} {stds[-1]:9.4f} "
              f"{sep[-1]:8.4f} {corr[-1]:8.4f}")

    if args.lyapunov:
        from repro.analysis import estimate_lyapunov, perturb_velocity
        from repro.ns import SpectralNSSolver2D

        s = samples[0]
        n = s.grid_size
        reynolds = float(meta.get("reynolds", 800.0))
        nu = 2 * np.pi / reynolds
        a, b = SpectralNSSolver2D(n, nu), SpectralNSSolver2D(n, nu)
        a.set_velocity(s.velocity[0])
        b.set_velocity(perturb_velocity(s.velocity[0], 1e-2, rng=np.random.default_rng(0)))
        result = estimate_lyapunov(a, b, duration=3.0 * 2 * np.pi, n_snapshots=30)
        t_c = 2 * np.pi
        exps = result.exponents * t_c
        print(f"\nLyapunov: Λ(u1)={exps[0]:.3f}/t_c Λ(u2)={exps[1]:.3f}/t_c "
              f"T_L={1.0 / exps.max():.3f} t_c")
    return 0


def _cmd_inspect(args) -> int:
    from repro.core import CheckpointError, inspect_checkpoint

    try:
        info = inspect_checkpoint(args.checkpoint)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"checkpoint : {info['path']}")
    print(f"format     : version {info['version']}")
    print(f"kind       : {info['kind']}")
    print(f"parameters : {info['n_parameters']:,} in {info['n_arrays']} arrays "
          f"({info['file_bytes'] / 1024:.1f} KiB on disk)")
    config = {k: v for k, v in info["config"].items() if k != "kind"}
    print("config     : " + ", ".join(f"{k}={v}" for k, v in sorted(config.items())))
    if info["normalizer"] is None:
        print("normalizer : none")
    else:
        print("normalizer : " + ", ".join(f"{k}={v}" for k, v in sorted(info["normalizer"].items())))
    return 0


def _cmd_serve(args) -> int:
    from repro.core import CheckpointError
    from repro.serve import BatchPolicy, InferenceService, ModelRegistry, serve_forever

    registry = ModelRegistry(capacity=args.capacity,
                             require_manifest=args.require_manifest)
    for spec in args.model:
        name, _, path = spec.rpartition("=")
        try:
            registry.register(name or path, path)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if not args.model:
        print("warning: no --model registered; requests must pass checkpoint paths",
              file=sys.stderr)
    trust = None
    if args.trust is not None:
        from repro.trust import TrustPolicy

        if args.trust == "default":
            trust = TrustPolicy()
        else:
            import json

            try:
                with open(args.trust, encoding="utf-8") as fh:
                    payload = json.load(fh)
                trust = TrustPolicy.from_dict(payload.get("policy", payload))
            except (OSError, ValueError) as exc:
                print(f"error: {args.trust}: {exc}", file=sys.stderr)
                return 2
    service = InferenceService(
        registry,
        policy=BatchPolicy(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                           max_queue=args.queue_depth),
        n_workers=args.serve_workers,
        deterministic=not args.non_deterministic,
        default_mode=args.default_mode,
        solver_kind=args.solver,
        proc_workers=args.serve_workers if args.proc else 0,
        trust=trust,
        replica_id=args.replica_id,
    )
    serve_forever(service, host=args.host, port=args.port, verbose=args.verbose,
                  announce=args.announce, heartbeat=args.heartbeat,
                  drain_grace=args.drain_grace)
    return 0


def _cmd_run(args) -> int:
    from repro.jobs.cli import run_run

    return run_run(args)


def _cmd_resume(args) -> int:
    from repro.jobs.cli import run_resume

    return run_resume(args)


def _cmd_verify(args) -> int:
    from repro.jobs.cli import run_verify

    return run_verify(args)


def _cmd_compile(args) -> int:
    from repro.compile.cli import run_compile

    return run_compile(args)


def _cmd_check(args) -> int:
    from repro.checks.cli import run_check

    return run_check(args)


def _cmd_chaos(args) -> int:
    from repro.faults.cli import run_chaos

    return run_chaos(args)


def _cmd_trust(args) -> int:
    from repro.trust.cli import run_trust

    return run_trust(args)


def _cmd_fleet(args) -> int:
    from repro.fleet.cli import run_fleet

    return run_fleet(args)


def _cmd_trace(args) -> int:
    from repro.obs.cli import run_trace

    return run_trace(args)


def _cmd_profile(args) -> int:
    from repro.obs.cli import run_profile

    return run_profile(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "rollout": _cmd_rollout,
    "analyze": _cmd_analyze,
    "inspect": _cmd_inspect,
    "serve": _cmd_serve,
    "compile": _cmd_compile,
    "run": _cmd_run,
    "resume": _cmd_resume,
    "verify": _cmd_verify,
    "check": _cmd_check,
    "chaos": _cmd_chaos,
    "trust": _cmd_trust,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    from repro import faults, obs

    obs.configure_from_env()
    faults.configure_from_env()
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
