"""Global statistics of trajectory data (paper Fig. 1 and Fig. 8 bottom).

All functions take a trajectory of fields with time on the first axis and
return per-snapshot scalars.
"""

from __future__ import annotations

import numpy as np

from ..ns.fields import divergence as field_divergence

__all__ = [
    "mean_evolution",
    "std_evolution",
    "frobenius_evolution",
    "global_enstrophy_evolution",
    "kinetic_energy_evolution",
    "divergence_evolution",
    "trajectory_statistics",
]


def mean_evolution(vorticity: np.ndarray) -> np.ndarray:
    """Volume mean of the field per snapshot; ``(T, n, n) → (T,)``.

    For incompressible periodic flow the vorticity mean is zero up to
    numerics (top row of Fig. 1).
    """
    return vorticity.reshape(vorticity.shape[0], -1).mean(axis=1)


def std_evolution(vorticity: np.ndarray) -> np.ndarray:
    """Volume standard deviation per snapshot (middle row of Fig. 1)."""
    return vorticity.reshape(vorticity.shape[0], -1).std(axis=1)


def frobenius_evolution(vorticity: np.ndarray) -> np.ndarray:
    """Frobenius norm ``‖Ω‖_F`` per snapshot (bottom row of Fig. 1)."""
    flat = vorticity.reshape(vorticity.shape[0], -1)
    return np.sqrt((flat * flat).sum(axis=1))


def global_enstrophy_evolution(vorticity: np.ndarray) -> np.ndarray:
    """Sum of squared vorticity fluctuation per snapshot.

    The paper defines global enstrophy as the sum of the square of the
    vorticity fluctuation over the domain; with zero-mean vorticity this
    is ``‖Ω‖_F²``.
    """
    flat = vorticity.reshape(vorticity.shape[0], -1)
    fluct = flat - flat.mean(axis=1, keepdims=True)
    return (fluct * fluct).sum(axis=1)


def kinetic_energy_evolution(velocity: np.ndarray) -> np.ndarray:
    """Volume-mean kinetic energy per snapshot; ``(T, 2, n, n) → (T,)``."""
    return 0.5 * (velocity**2).sum(axis=1).reshape(velocity.shape[0], -1).mean(axis=1)


def divergence_evolution(velocity: np.ndarray, length: float = 2.0 * np.pi) -> np.ndarray:
    """RMS divergence per snapshot — zero for solver output, nonzero for
    raw FNO predictions (Fig. 8, bottom-right)."""
    out = np.empty(velocity.shape[0])
    for t in range(velocity.shape[0]):
        d = field_divergence(velocity[t], length)
        out[t] = float(np.sqrt(np.mean(d * d)))
    return out


def trajectory_statistics(vorticity: np.ndarray, velocity: np.ndarray | None = None) -> dict[str, np.ndarray]:
    """All Fig.-1-style curves for one trajectory, keyed by name."""
    stats = {
        "mean": mean_evolution(vorticity),
        "std": std_evolution(vorticity),
        "frobenius": frobenius_evolution(vorticity),
        "global_enstrophy": global_enstrophy_evolution(vorticity),
    }
    if velocity is not None:
        stats["kinetic_energy"] = kinetic_energy_evolution(velocity)
        stats["rms_divergence"] = divergence_evolution(velocity)
    return stats
