"""Lyapunov exponent estimation (paper Sec. IV, Fig. 4).

Protocol, following the paper exactly: take two initial conditions A and
B with ``δx₀ = ‖u₁^A(0) − u₁^B(0)‖₂ = 10⁻²``, evolve both, and track the
finite-time exponents

    λ_i = (1/t_i) ln( δx(t_i) / δx₀ )

separately for the two velocity components.  The reported exponent is the
time-weighted average of Eq. (1),

    <λ> = Σ_i λ_i t_i / Σ_i t_i ,

computed over the window where growth is still exponential (before the
separation saturates at the attractor size).  The Lyapunov time is
``T_L = 1/Λ`` with ``Λ`` the larger of the two component exponents; the
paper finds ``Λ ≈ 2.15`` and ``T_L ≈ 0.45 t_c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ns.base import NSSolverBase
from ..ns.fields import velocity_from_vorticity, vorticity_from_velocity
from ..utils.rng import as_generator

__all__ = ["LyapunovResult", "perturb_velocity", "estimate_lyapunov", "finite_time_exponents"]


@dataclass
class LyapunovResult:
    """Separation histories and exponent estimates for one IC pair."""

    times: np.ndarray  # (T,), excludes t = 0
    separation: np.ndarray  # (2, T): δx(t) for u1 and u2
    delta0: np.ndarray  # (2,): initial separations per component
    exponents: np.ndarray  # (2,): Eq.-(1) weighted averages
    fit_mask: np.ndarray  # (T,) bool: snapshots included in the average

    @property
    def lambda_series(self) -> np.ndarray:
        """Finite-time exponents λ_i, shape (2, T)."""
        return np.log(self.separation / self.delta0[:, None]) / self.times[None, :]

    @property
    def max_exponent(self) -> float:
        return float(self.exponents.max())

    @property
    def mean_exponent(self) -> float:
        return float(self.exponents.mean())

    @property
    def lyapunov_time(self) -> float:
        """Conservative estimate ``T_L = 1/Λ_max``."""
        return 1.0 / self.max_exponent


def perturb_velocity(
    u: np.ndarray, delta0: float, rng=None, length: float = 2.0 * np.pi
) -> np.ndarray:
    """Return a solenoidal velocity whose u₁ differs from ``u`` by ``δx₀``.

    A random solenoidal perturbation is rescaled so that
    ``‖u₁' − u₁‖₂ = delta0`` exactly (the paper's protocol fixes the
    separation in the first component).
    """
    rng = as_generator(rng)
    noise = rng.standard_normal(u.shape)
    noise_sol = velocity_from_vorticity(vorticity_from_velocity(noise, length), length)
    norm_u1 = np.linalg.norm(noise_sol[0])
    if norm_u1 == 0:
        raise RuntimeError("degenerate perturbation draw")
    perturbed = u + noise_sol * (delta0 / norm_u1)
    return perturbed


def finite_time_exponents(times: np.ndarray, separation: np.ndarray, delta0: float) -> np.ndarray:
    """``λ_i = ln(δx(t_i)/δx₀)/t_i`` for one separation history."""
    times = np.asarray(times, dtype=float)
    if np.any(times <= 0):
        raise ValueError("times must be strictly positive")
    return np.log(np.asarray(separation) / delta0) / times


def estimate_lyapunov(
    solver_a: NSSolverBase,
    solver_b: NSSolverBase,
    duration: float,
    n_snapshots: int = 50,
    saturation_fraction: float = 0.5,
) -> LyapunovResult:
    """Estimate component Lyapunov exponents from a prepared solver pair.

    ``solver_a``/``solver_b`` must already hold the two nearby initial
    conditions (see :func:`perturb_velocity`).  Snapshots of the velocity
    separation are taken uniformly over ``duration``; the Eq.-(1) average
    uses only snapshots where the separation is still below
    ``saturation_fraction`` of its maximum (growth regime).
    """
    if n_snapshots < 2:
        raise ValueError("need at least 2 snapshots")
    u_a0 = solver_a.velocity
    u_b0 = solver_b.velocity
    delta0 = np.array(
        [np.linalg.norm(u_a0[0] - u_b0[0]), np.linalg.norm(u_a0[1] - u_b0[1])]
    )
    if np.any(delta0 <= 0):
        raise ValueError("initial conditions are identical in at least one component")

    interval = duration / n_snapshots
    times = np.empty(n_snapshots)
    separation = np.empty((2, n_snapshots))
    for i in range(n_snapshots):
        solver_a.advance(interval)
        solver_b.advance(interval)
        ua, ub = solver_a.velocity, solver_b.velocity
        times[i] = solver_a.time
        separation[0, i] = np.linalg.norm(ua[0] - ub[0])
        separation[1, i] = np.linalg.norm(ua[1] - ub[1])

    # Growth window: separation below a fraction of its final/maximum
    # value (past that, trajectories wander the attractor independently).
    exponents = np.empty(2)
    fit_mask = np.ones(n_snapshots, dtype=bool)
    for c in range(2):
        mask = separation[c] < saturation_fraction * separation[c].max()
        if not mask.any():
            mask = np.ones(n_snapshots, dtype=bool)
        fit_mask &= mask
        lam = np.log(separation[c][mask] / delta0[c]) / times[mask]
        weights = times[mask]
        exponents[c] = float((lam * weights).sum() / weights.sum())

    return LyapunovResult(
        times=times,
        separation=separation,
        delta0=delta0,
        exponents=exponents,
        fit_mask=fit_mask,
    )
