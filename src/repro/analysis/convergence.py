"""Order-of-accuracy verification (method of manufactured comparisons).

Classic V&V infrastructure: run a solver at a ladder of resolutions (or
time steps), measure errors against a reference, and fit the observed
convergence order ``p`` from ``error ∝ h^p``.  The test suite uses this
to certify that the finite-difference solver is 2nd-order in space, the
RK schemes are 4th/3rd-order in time, and the spectral solvers converge
faster than any polynomial order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ConvergenceResult", "observed_order", "grid_refinement_study"]


@dataclass
class ConvergenceResult:
    """Errors on a refinement ladder and the fitted order."""

    resolutions: np.ndarray
    errors: np.ndarray
    order: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{int(n)}:{e:.2e}" for n, e in zip(self.resolutions, self.errors))
        return f"ConvergenceResult(order={self.order:.2f}, {pairs})"


def observed_order(resolutions: Sequence[float], errors: Sequence[float]) -> float:
    """Least-squares slope of ``log(error)`` vs ``log(1/resolution)``.

    ``resolutions`` are the grid counts (or 1/dt); larger = finer.
    A solver of order ``p`` returns ≈ ``p``.
    """
    res = np.asarray(resolutions, dtype=float)
    err = np.asarray(errors, dtype=float)
    if res.size != err.size or res.size < 2:
        raise ValueError("need at least two (resolution, error) pairs")
    if np.any(err <= 0):
        raise ValueError("errors must be positive (exact results have no measurable order)")
    slope, _ = np.polyfit(np.log(res), np.log(err), 1)
    return float(-slope)


def grid_refinement_study(
    run: Callable[[int], np.ndarray],
    exact: Callable[[int], np.ndarray],
    resolutions: Sequence[int],
    norm: str = "max",
) -> ConvergenceResult:
    """Run a solver over a resolution ladder and fit the observed order.

    Parameters
    ----------
    run:
        ``run(n) -> field`` — solve at resolution ``n``.
    exact:
        ``exact(n) -> field`` — the exact (or reference) solution sampled
        at the same resolution.
    resolutions:
        Increasing ladder of grid sizes.
    norm:
        ``"max"`` (default) or ``"l2"`` error norm.
    """
    errors = []
    for n in resolutions:
        diff = np.asarray(run(n)) - np.asarray(exact(n))
        if norm == "max":
            errors.append(float(np.abs(diff).max()))
        elif norm == "l2":
            errors.append(float(np.sqrt(np.mean(diff**2))))
        else:
            raise ValueError(f"unknown norm {norm!r}")
    return ConvergenceResult(
        resolutions=np.asarray(resolutions, dtype=float),
        errors=np.asarray(errors),
        order=observed_order(resolutions, errors),
    )
