"""Error metrics for model evaluation (Figs. 5–7, 9).

The paper reports relative L2 errors per predicted snapshot, averaged
over held-out samples, and percentage errors of global quantities
(kinetic energy, enstrophy) along long roll-outs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_l2",
    "per_snapshot_relative_l2",
    "percentage_error",
    "rollout_global_errors",
]


def relative_l2(pred: np.ndarray, true: np.ndarray) -> float:
    """``‖pred − true‖₂ / ‖true‖₂`` over the full arrays."""
    denom = np.linalg.norm(true.ravel())
    if denom == 0:
        raise ValueError("reference field is identically zero")
    return float(np.linalg.norm((pred - true).ravel()) / denom)


def per_snapshot_relative_l2(pred: np.ndarray, true: np.ndarray, n_fields: int = 1) -> np.ndarray:
    """Relative L2 per predicted snapshot, averaged over the batch.

    ``pred``/``true`` have shape ``(B, n_snap*n_fields, n, n)`` with the
    channel axis holding ``n_snap`` chronological snapshots of
    ``n_fields`` field components each (the temporal-channel layout).
    Returns shape ``(n_snap,)`` — the curves plotted in Figs. 5–7.
    """
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {true.shape}")
    B, C = pred.shape[:2]
    if C % n_fields != 0:
        raise ValueError(f"channel count {C} not divisible by n_fields {n_fields}")
    n_snap = C // n_fields
    p = pred.reshape(B, n_snap, n_fields, *pred.shape[2:])
    t = true.reshape(B, n_snap, n_fields, *true.shape[2:])
    diff = (p - t).reshape(B, n_snap, -1)
    ref = t.reshape(B, n_snap, -1)
    num = np.linalg.norm(diff, axis=2)
    den = np.maximum(np.linalg.norm(ref, axis=2), 1e-30)
    return (num / den).mean(axis=0)


def percentage_error(pred: np.ndarray, true: np.ndarray) -> np.ndarray:
    """``100 · |pred − true| / |true|`` elementwise (scalar series)."""
    true = np.asarray(true, dtype=float)
    pred = np.asarray(pred, dtype=float)
    return 100.0 * np.abs(pred - true) / np.maximum(np.abs(true), 1e-30)


def rollout_global_errors(
    pred_curves: dict[str, np.ndarray], ref_curves: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Percentage-error curves for matching global-quantity histories."""
    out = {}
    for key, ref in ref_curves.items():
        if key in pred_curves:
            out[key] = percentage_error(pred_curves[key], ref)
    return out
