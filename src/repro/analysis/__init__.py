"""Flow-field analysis: statistics, separation, Lyapunov exponents,
spectra and error metrics."""

from .lyapunov import (
    LyapunovResult,
    estimate_lyapunov,
    finite_time_exponents,
    perturb_velocity,
)
from .metrics import (
    per_snapshot_relative_l2,
    percentage_error,
    relative_l2,
    rollout_global_errors,
)
from .separation import correlation_coefficient, initial_projection, l2_separation
from .spectra import energy_spectrum, enstrophy_spectrum
from .spectral_bias import band_energy_errors, rollout_spectral_drift, spectral_fidelity
from .convergence import ConvergenceResult, grid_refinement_study, observed_order
from .visualization import ascii_render, save_field_ppm, save_field_row_ppm, vorticity_to_rgb
from .statistics import (
    divergence_evolution,
    frobenius_evolution,
    global_enstrophy_evolution,
    kinetic_energy_evolution,
    mean_evolution,
    std_evolution,
    trajectory_statistics,
)

__all__ = [
    "LyapunovResult", "estimate_lyapunov", "perturb_velocity", "finite_time_exponents",
    "relative_l2", "per_snapshot_relative_l2", "percentage_error", "rollout_global_errors",
    "l2_separation", "initial_projection", "correlation_coefficient",
    "energy_spectrum", "enstrophy_spectrum",
    "band_energy_errors", "spectral_fidelity", "rollout_spectral_drift",
    "mean_evolution", "std_evolution", "frobenius_evolution",
    "global_enstrophy_evolution", "kinetic_energy_evolution",
    "divergence_evolution", "trajectory_statistics",
    "vorticity_to_rgb", "save_field_ppm", "save_field_row_ppm", "ascii_render",
    "ConvergenceResult", "observed_order", "grid_refinement_study",
]
