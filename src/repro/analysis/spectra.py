"""Radial (isotropic) energy spectra for 2-D turbulence.

Used by the spectral-bias diagnostics: pure-ML emulators fail at small
scales first, which shows up as a deficit in the high-``k`` tail of
``E(k)`` long before global quantities drift.
"""

from __future__ import annotations

import numpy as np

# scipy's pocketfft preserves single precision (np.fft promotes to
# complex128) — the repo-wide transform policy (RPR001).
from scipy import fft as _fft

from ..ns.fields import wavenumbers

__all__ = ["energy_spectrum", "enstrophy_spectrum"]


def _radial_bins(n: int, length: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    kx, ky, k2 = wavenumbers(n, length)
    k_mag = np.sqrt(k2)
    k_unit = 2.0 * np.pi / length
    bins = np.arange(0.5, n // 2 + 1) * k_unit
    idx = np.digitize(k_mag.ravel(), bins)
    return k_mag, bins, idx


def _half_weights(n: int) -> np.ndarray:
    """Multiplicity of each rfft2 coefficient in the full spectrum."""
    w = np.full((n, n // 2 + 1), 2.0)
    w[:, 0] = 1.0
    if n % 2 == 0:
        w[:, -1] = 1.0
    return w


def energy_spectrum(velocity: np.ndarray, length: float = 2.0 * np.pi) -> tuple[np.ndarray, np.ndarray]:
    """Shell-summed kinetic energy spectrum from ``(2, n, n)`` velocity.

    Returns ``(k, E)`` where ``k`` are shell-centre wavenumbers and
    ``Σ_k E(k) ≈ ½⟨|u|²⟩`` (Parseval with mean normalisation).
    """
    n = velocity.shape[-1]
    u_hat = _fft.rfft2(velocity[0]) / (n * n)
    v_hat = _fft.rfft2(velocity[1]) / (n * n)
    dens = 0.5 * (np.abs(u_hat) ** 2 + np.abs(v_hat) ** 2) * _half_weights(n)
    return _shell_sum(dens, n, length)


def enstrophy_spectrum(omega: np.ndarray, length: float = 2.0 * np.pi) -> tuple[np.ndarray, np.ndarray]:
    """Shell-summed enstrophy spectrum from ``(n, n)`` vorticity."""
    n = omega.shape[-1]
    w_hat = _fft.rfft2(omega) / (n * n)
    dens = 0.5 * np.abs(w_hat) ** 2 * _half_weights(n)
    return _shell_sum(dens, n, length)


def _shell_sum(density: np.ndarray, n: int, length: float) -> tuple[np.ndarray, np.ndarray]:
    k_mag, bins, idx = _radial_bins(n, length)
    n_shells = bins.size
    spectrum = np.zeros(n_shells)
    flat = density.ravel()
    for shell in range(n_shells):
        spectrum[shell] = flat[idx == shell].sum()
    k_unit = 2.0 * np.pi / length
    k_centres = np.arange(n_shells) * k_unit
    # Shell 0 is the mean mode; drop it (no dynamics there).
    return k_centres[1:], spectrum[1:]
