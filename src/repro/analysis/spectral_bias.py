"""Spectral-bias diagnostics for learned emulators.

The paper (Sec. I) attributes the long-horizon instability of pure ML
emulators to *spectral bias*: the smaller scales are not learned, only
the large-scale dynamics are captured [Chattopadhyay & Hassanzadeh].
These diagnostics quantify that mechanism for any predicted/reference
velocity-field pair:

* :func:`band_energy_errors` — relative energy error per wavenumber band;
* :func:`spectral_fidelity` — the wavenumber above which the prediction's
  spectrum deviates from the reference by more than a tolerance;
* :func:`rollout_spectral_drift` — band errors along a roll-out, showing
  the high-``k`` bands degrading first.
"""

from __future__ import annotations

import numpy as np

from .spectra import energy_spectrum

__all__ = ["band_energy_errors", "spectral_fidelity", "rollout_spectral_drift"]


def band_energy_errors(
    pred_velocity: np.ndarray,
    ref_velocity: np.ndarray,
    n_bands: int = 4,
    length: float = 2.0 * np.pi,
) -> dict[str, np.ndarray]:
    """Relative energy error in ``n_bands`` logarithmic wavenumber bands.

    Returns ``{"band_edges": (n_bands+1,), "errors": (n_bands,)}`` where
    ``errors[i] = |E_pred − E_ref| / E_ref`` summed over band ``i``.
    """
    k, e_pred = energy_spectrum(pred_velocity, length)
    _, e_ref = energy_spectrum(ref_velocity, length)
    k_min, k_max = k[0], k[-1]
    edges = np.geomspace(k_min, k_max * (1 + 1e-9), n_bands + 1)
    errors = np.empty(n_bands)
    for i in range(n_bands):
        mask = (k >= edges[i]) & (k < edges[i + 1])
        ref_sum = e_ref[mask].sum()
        pred_sum = e_pred[mask].sum()
        errors[i] = abs(pred_sum - ref_sum) / max(ref_sum, 1e-30)
    return {"band_edges": edges, "errors": errors}


def spectral_fidelity(
    pred_velocity: np.ndarray,
    ref_velocity: np.ndarray,
    tolerance: float = 0.5,
    length: float = 2.0 * np.pi,
) -> float:
    """Highest wavenumber up to which the predicted spectrum is faithful.

    Scans shells from low to high ``k`` and returns the first shell centre
    whose relative spectral error exceeds ``tolerance`` (or the maximum
    resolved wavenumber if none does).  A spectrally biased model has a
    fidelity wavenumber well below the grid Nyquist.
    """
    k, e_pred = energy_spectrum(pred_velocity, length)
    _, e_ref = energy_spectrum(ref_velocity, length)
    rel = np.abs(e_pred - e_ref) / np.maximum(e_ref, 1e-30)
    bad = np.nonzero(rel > tolerance)[0]
    return float(k[bad[0]] if bad.size else k[-1])


def rollout_spectral_drift(
    pred_trajectory: np.ndarray,
    ref_trajectory: np.ndarray,
    n_bands: int = 4,
    length: float = 2.0 * np.pi,
) -> np.ndarray:
    """Band errors along a roll-out: ``(T, n_bands)``.

    ``pred_trajectory``/``ref_trajectory`` have shape ``(T, 2, n, n)``.
    Spectral bias shows as the last column (highest band) growing faster
    than the first.
    """
    if pred_trajectory.shape != ref_trajectory.shape:
        raise ValueError("trajectory shapes must match")
    T = pred_trajectory.shape[0]
    out = np.empty((T, n_bands))
    for t in range(T):
        out[t] = band_energy_errors(
            pred_trajectory[t], ref_trajectory[t], n_bands=n_bands, length=length
        )["errors"]
    return out
