"""Separation from the initial condition (paper Figs. 2 and 3).

Fig. 2 plots ``‖ω(t) − ω(0)‖₂ / ‖ω(0)‖₂`` per sample; Fig. 3 plots the
normalised projection of ``ω(t)`` on ``ω(0)``.  Together they verify that
the dataset evolves meaningfully over the prediction horizon — the paper
warns against judging a model on a horizon where even the initial
condition would be an acceptable prediction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["l2_separation", "initial_projection", "correlation_coefficient"]


def l2_separation(vorticity: np.ndarray) -> np.ndarray:
    """``‖ω(t) − ω(0)‖₂ / ‖ω(0)‖₂`` per snapshot; ``(T, n, n) → (T,)``."""
    flat = vorticity.reshape(vorticity.shape[0], -1)
    ref = flat[0]
    denom = np.linalg.norm(ref)
    if denom == 0:
        raise ValueError("initial field is identically zero")
    return np.linalg.norm(flat - ref, axis=1) / denom


def initial_projection(vorticity: np.ndarray) -> np.ndarray:
    """Projection of ``ω(t)`` on ``ω(0)`` scaled by ``‖ω(0)‖²`` (Fig. 3).

    Equals 1 at t = 0 and decays toward 0 as the field decorrelates from
    its initial state.
    """
    flat = vorticity.reshape(vorticity.shape[0], -1)
    ref = flat[0]
    denom = float(ref @ ref)
    if denom == 0:
        raise ValueError("initial field is identically zero")
    return flat @ ref / denom


def correlation_coefficient(vorticity: np.ndarray) -> np.ndarray:
    """Pearson correlation of each snapshot with the initial snapshot."""
    flat = vorticity.reshape(vorticity.shape[0], -1)
    ref = flat[0] - flat[0].mean()
    ref_norm = np.linalg.norm(ref)
    centered = flat - flat.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    return centered @ ref / np.maximum(norms * ref_norm, 1e-30)
