"""Dependency-free field visualisation (paper Fig. 8, top row).

Renders 2-D scalar fields (vorticity) to portable pixmap images with a
blue–white–red diverging colormap — no matplotlib required.  PPM files
open in any image viewer and convert losslessly to PNG.

* :func:`vorticity_to_rgb` — field → ``(n, n, 3)`` uint8 image array;
* :func:`save_field_ppm` — write a binary PPM (P6);
* :func:`save_field_row_ppm` — several fields side by side (the Fig. 8
  layout: PDE vs FNO vs hybrid at matching times).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["vorticity_to_rgb", "save_field_ppm", "save_field_row_ppm", "ascii_render"]

# Diverging anchors: blue (negative) → white (zero) → red (positive).
_NEG = np.array([0.230, 0.299, 0.754])
_MID = np.array([0.865, 0.865, 0.865])
_POS = np.array([0.706, 0.016, 0.150])


def vorticity_to_rgb(
    field: np.ndarray,
    vmax: float | None = None,
    upscale: int = 1,
) -> np.ndarray:
    """Map a scalar field to a diverging-colormap RGB image.

    ``vmax`` sets the symmetric colour range (default: max |field|);
    ``upscale`` repeats pixels for larger output.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError("expected a 2-D scalar field")
    if vmax is None:
        vmax = float(np.abs(field).max()) or 1.0
    if vmax <= 0:
        raise ValueError("vmax must be positive")
    t = np.clip(field / vmax, -1.0, 1.0)

    rgb = np.empty(field.shape + (3,))
    neg = t < 0
    # Interpolate toward the mid colour from each side.
    tt = np.abs(t)[..., None]
    rgb[neg] = (_MID[None, :] * (1 - tt[neg]) + _NEG[None, :] * tt[neg]).reshape(-1, 3)
    rgb[~neg] = (_MID[None, :] * (1 - tt[~neg]) + _POS[None, :] * tt[~neg]).reshape(-1, 3)
    img = (rgb * 255.0 + 0.5).astype(np.uint8)
    if upscale > 1:
        img = np.repeat(np.repeat(img, upscale, axis=0), upscale, axis=1)
    return img


def save_field_ppm(path, field: np.ndarray, vmax: float | None = None, upscale: int = 4) -> Path:
    """Write one field as a binary PPM image; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    img = vorticity_to_rgb(field, vmax=vmax, upscale=upscale)
    h, w = img.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(img.tobytes())
    return path


def save_field_row_ppm(
    path,
    fields: list[np.ndarray],
    vmax: float | None = None,
    upscale: int = 4,
    gap: int = 2,
) -> Path:
    """Write several fields side by side with a shared colour range.

    This reproduces the layout of the paper's Fig. 8 visualisation row
    (one method per column).
    """
    if not fields:
        raise ValueError("no fields given")
    if vmax is None:
        vmax = max(float(np.abs(f).max()) for f in fields) or 1.0
    images = [vorticity_to_rgb(f, vmax=vmax, upscale=upscale) for f in fields]
    h = max(img.shape[0] for img in images)
    spacer = np.full((h, gap * upscale, 3), 255, dtype=np.uint8)
    row: list[np.ndarray] = []
    for i, img in enumerate(images):
        if i:
            row.append(spacer)
        if img.shape[0] < h:  # pad shorter panels
            pad = np.full((h - img.shape[0], img.shape[1], 3), 255, dtype=np.uint8)
            img = np.concatenate([img, pad], axis=0)
        row.append(img)
    combined = np.concatenate(row, axis=1)

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(f"P6\n{combined.shape[1]} {combined.shape[0]}\n255\n".encode())
        fh.write(combined.tobytes())
    return path


_ASCII_RAMP = " .:-=+*#%@"


def ascii_render(field: np.ndarray, width: int = 48) -> str:
    """Terminal-friendly rendering of |field| (docs, quick sanity checks)."""
    field = np.asarray(field, dtype=float)
    n = field.shape[0]
    step = max(1, n // width)
    sub = np.abs(field[::step, ::step])
    vmax = sub.max() or 1.0
    idx = np.minimum((sub / vmax * (len(_ASCII_RAMP) - 1)).astype(int), len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in idx)
