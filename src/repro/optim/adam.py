"""Adam and AdamW optimisers.

The paper trains with Adam + a step learning-rate schedule ("scheduler
gamma" and "scheduler step" hyper-parameters in Figs. 5–7).
"""

from __future__ import annotations

import numpy as np

from .base import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional L2 ``weight_decay`` added to
    the gradient (the classic, non-decoupled form)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr=lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "lr": self.lr,
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]
        self.lr = float(state["lr"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
