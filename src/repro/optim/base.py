"""Optimizer base class and plain SGD."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base class: holds the parameter list and the current learning rate."""

    def __init__(self, params, lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr=lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self._velocity is not None:
                v = self._velocity[i]
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad
