"""Optimisers and learning-rate schedulers."""

from .adam import Adam, AdamW
from .base import SGD, Optimizer
from .lr_scheduler import CosineAnnealingLR, LambdaLR, LRScheduler, StepLR

__all__ = [
    "Optimizer", "SGD", "Adam", "AdamW",
    "LRScheduler", "StepLR", "CosineAnnealingLR", "LambdaLR",
]
