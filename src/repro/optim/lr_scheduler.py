"""Learning-rate schedulers.

:class:`StepLR` reproduces the paper's "scheduler gamma" / "scheduler
step" hyper-parameters (Figs. 5–7): every ``step_size`` epochs the
learning rate is multiplied by ``gamma``.
"""

from __future__ import annotations

import math

from .base import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "LambdaLR"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self) -> float:
        frac = min(self.epoch, self.t_max) / max(self.t_max, 1)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * frac))


class LambdaLR(LRScheduler):
    """LR = base LR × ``fn(epoch)``."""

    def __init__(self, optimizer: Optimizer, fn):
        super().__init__(optimizer)
        self.fn = fn

    def get_lr(self) -> float:
        return self.base_lr * self.fn(self.epoch)
