"""Fleet coordinator: spawn, supervise, and heal N serve replicas.

The coordinator owns the replica child processes.  A single supervision
thread watches every replica for two failure signals:

* **exit** — ``proc.poll()`` reports the child died (SIGKILL, OOM,
  crash); clean exits of *paused* replicas (deploys, operator stops)
  are not failures;
* **stall** — the child's heartbeat file stops advancing for
  ``stall_timeout`` seconds (read through
  :class:`repro.jobs.HeartbeatReader`, so torn reads never alias as
  stalls); a stalled replica is SIGKILLed first, then restarted.

Restarts draw from a seeded :class:`repro.faults.RetryPolicy` budget
per replica: ``attempts - 1`` restarts with the policy's exponential
backoff between them (crash-loops back off instead of spinning), after
which the replica is marked ``failed`` and left down for the operator —
the gateway's health lattice has long since ejected it.

Deploys call :meth:`restart_replica`, which pauses supervision for that
replica, drains the old incarnation (SIGTERM → graceful drain), spawns
a fresh one — possibly with a new checkpoint — and resumes watching.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from ..faults.policy import RetryPolicy
from ..jobs.supervisor import HeartbeatReader
from .replica import ReplicaProcess, ReplicaSpec

__all__ = ["Coordinator"]

_DEFAULT_RETRY = RetryPolicy(attempts=6, backoff=0.2, factor=2.0,
                             max_backoff=5.0, retry_on=())


class Coordinator:
    """Supervisor of a fixed-size fleet of serve replicas."""

    def __init__(self, spec: ReplicaSpec, n_replicas: int, workdir,
                 retry: RetryPolicy = _DEFAULT_RETRY,
                 stall_timeout: float = 5.0, poll_interval: float = 0.1,
                 ready_timeout: float = 30.0, drain_timeout: float = 10.0,
                 on_event=None, clock=time.monotonic, sleep=time.sleep):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.workdir = Path(workdir)
        self.retry = retry
        self.stall_timeout = float(stall_timeout)
        self.poll_interval = float(poll_interval)
        self.ready_timeout = float(ready_timeout)
        self.drain_timeout = float(drain_timeout)
        self._on_event = on_event
        self._clock = clock
        self._sleep = sleep
        self._delays = retry.delays()
        self._lock = threading.RLock()
        self._replicas: dict[str, ReplicaProcess] = {}
        self._specs: dict[str, ReplicaSpec] = {
            f"r{i}": spec for i in range(n_replicas)
        }
        self._restarts: dict[str, int] = {rid: 0 for rid in self._specs}
        self._paused: set[str] = set()
        self._failed: set[str] = set()
        self._beats: dict[str, HeartbeatReader] = {}
        self._beat_seen: dict[str, tuple[int, float]] = {}  # (seq, at)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- events --------------------------------------------------------
    def _emit(self, event: str, replica: str, **extra) -> None:
        if self._on_event is not None:
            self._on_event({"event": event, "replica": replica, **extra})

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, rid: str) -> ReplicaProcess:
        """Spawn + await one replica. Caller holds the lock."""
        proc = ReplicaProcess(rid, self._specs[rid], self.workdir)
        proc.spawn()
        self._emit("spawn", rid, pid=proc.pid)
        proc.wait_ready(timeout=self.ready_timeout)
        self._replicas[rid] = proc
        self._beats[rid] = HeartbeatReader(proc.heartbeat_path)
        self._beat_seen[rid] = (-1, self._clock())
        self._emit("ready", rid, url=proc.base_url())
        return proc

    def start(self) -> "Coordinator":
        with self._lock:
            for rid in sorted(self._specs):
                self._spawn(rid)
        self._thread = threading.Thread(target=self._supervise, daemon=True,
                                        name="repro-fleet-supervisor")
        self._thread.start()
        return self

    def stop(self, graceful: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        with self._lock:
            for rid, proc in sorted(self._replicas.items()):
                if graceful:
                    proc.terminate(timeout=self.drain_timeout)
                else:
                    proc.kill()
                self._emit("stop", rid, returncode=proc.returncode())

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- supervision ---------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.wait(self.poll_interval):
            with self._lock:
                watchable = [
                    rid for rid in sorted(self._replicas)
                    if rid not in self._paused and rid not in self._failed
                ]
            for rid in watchable:
                if self._stop.is_set():
                    return
                self._check_one(rid)

    def _check_one(self, rid: str) -> None:
        with self._lock:
            if rid in self._paused or rid in self._failed:
                return
            proc = self._replicas.get(rid)
            if proc is None:
                return
            if not proc.alive():
                self._emit("exit", rid, returncode=proc.returncode())
                self._restart_locked(rid)
                return
            beat = self._beats[rid].read()
            now = self._clock()
            if beat is not None:
                seq = int(beat.get("seq", -1))
                seen_seq, seen_at = self._beat_seen[rid]
                if seq != seen_seq:
                    self._beat_seen[rid] = (seq, now)
                elif now - seen_at > self.stall_timeout:
                    self._emit("stall", rid, seq=seq,
                               stalled_for=now - seen_at)
                    proc.kill()
                    self._restart_locked(rid)

    def _restart_locked(self, rid: str) -> None:
        """Restart a dead replica under the per-replica budget."""
        self._restarts[rid] += 1
        budget = self.retry.attempts - 1
        if self._restarts[rid] > budget:
            self._failed.add(rid)
            self._emit("escalated", rid, restarts=self._restarts[rid])
            return
        delay = self._delays[min(self._restarts[rid] - 1,
                                 len(self._delays) - 1)] if self._delays else 0.0
        if delay:
            self._sleep(delay)
        try:
            self._spawn(rid)
            self._emit("restart", rid, restarts=self._restarts[rid])
        except (RuntimeError, TimeoutError) as exc:
            # The respawn itself failed; the next supervision pass sees
            # the dead child and burns another restart from the budget.
            self._emit("restart-failed", rid, error=str(exc))

    # -- deploy hooks --------------------------------------------------
    def pause(self, rid: str) -> None:
        with self._lock:
            self._paused.add(rid)

    def resume(self, rid: str) -> None:
        with self._lock:
            self._paused.discard(rid)

    def restart_replica(self, rid: str, spec: ReplicaSpec | None = None,
                        graceful: bool = True) -> dict:
        """Deliberately replace one replica (rolling deploys, rollbacks).

        Pauses supervision for ``rid`` so the intentional death is not
        double-counted as a crash, optionally swaps the spec (new
        checkpoint), and resumes supervision once the new incarnation
        announces.
        """
        with self._lock:
            if rid not in self._specs:
                raise KeyError(f"unknown replica {rid!r}")
            self._paused.add(rid)
        try:
            with self._lock:
                proc = self._replicas.get(rid)
                if spec is not None:
                    self._specs[rid] = spec
            if proc is not None:
                if graceful:
                    proc.terminate(timeout=self.drain_timeout)
                else:
                    proc.kill()
            with self._lock:
                self._failed.discard(rid)
                new = self._spawn(rid)
                return dict(new.address or {})
        finally:
            with self._lock:
                self._paused.discard(rid)

    def kill_replica(self, rid: str) -> int | None:
        """Chaos hook: SIGKILL a replica *without* pausing supervision.

        The supervision thread sees the exit on its next poll and heals
        the fleet through the ordinary restart-budget path — exactly the
        sequence the ``replica_kill`` scenario asserts on.
        """
        with self._lock:
            proc = self._replicas.get(rid)
        if proc is None:
            return None
        return proc.kill()

    # -- views ---------------------------------------------------------
    def replica_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def urls(self) -> dict:
        """Live routing table: replica id → base URL (dead => absent)."""
        with self._lock:
            return {
                rid: proc.base_url()
                for rid, proc in sorted(self._replicas.items())
                if proc.base_url() is not None
            }

    def spec_of(self, rid: str) -> ReplicaSpec:
        with self._lock:
            return self._specs[rid]

    def restarts(self, rid: str) -> int:
        with self._lock:
            return self._restarts[rid]

    def status(self) -> dict:
        with self._lock:
            replicas = {}
            for rid in sorted(self._specs):
                proc = self._replicas.get(rid)
                replicas[rid] = {
                    "replica_id": rid,
                    "pid": proc.pid if proc else None,
                    "alive": bool(proc and proc.alive()),
                    "url": proc.base_url() if proc else None,
                    "checkpoint": self._specs[rid].checkpoint,
                    "restarts": self._restarts[rid],
                    "paused": rid in self._paused,
                    "failed": rid in self._failed,
                }
            return {"replicas": replicas}
