"""Per-replica health scoring: a min-lattice over /healthz observations.

The gateway polls each replica's ``/healthz`` (one cheap JSON document)
and folds it into a **health score lattice**, deliberately shaped like
:mod:`repro.trust`'s trust score: every component maps into ``[0, 1]``,
the overall score is the *meet* (minimum), and a replica is routable iff
its score clears ``eject_below``.  Components:

* ``reachable`` — 1 while polls succeed and are fresh, 0 on connection
  failure or staleness (a SIGKILLed replica scores 0 within one poll);
* ``admission`` — 0 while the replica reports ``draining``;
* ``breaker`` / ``trust_breaker`` — closed 1, half-open 0.5, open 0;
* ``trust`` — the replica's trust-score EWMA (1 when trust is off);
* ``queue`` — ``1 - depth/limit`` (a saturated queue scores 0).

Ejection/readmission is a per-replica half-open state machine:
``admitted → ejected`` when the score drops below ``eject_below``;
after ``readmit_after_s`` of quiet the replica turns ``probing`` and
admits a bounded number of probe requests (or counts healthy polls);
``probe_successes`` successes readmit it, one failure re-ejects and
restarts the cooldown.  All transitions take an injectable clock, so
the unit tests pin them exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["HealthPolicy", "ReplicaHealth", "FleetHealth"]

_BREAKER_SCORES = {"closed": 1.0, "half_open": 0.5, "open": 0.0, None: 1.0}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the ejection/readmission state machine."""

    eject_below: float = 0.5
    stale_after_s: float = 3.0
    readmit_after_s: float = 1.0
    probe_successes: int = 1
    probe_max: int = 1

    def __post_init__(self):
        if not 0.0 <= self.eject_below <= 1.0:
            raise ValueError("eject_below must be in [0, 1]")
        if self.probe_successes < 1 or self.probe_max < 1:
            raise ValueError("probe_successes and probe_max must be >= 1")


class ReplicaHealth:
    """One replica's observed health and routing admission state.

    Not thread-safe on its own — :class:`FleetHealth` serialises access.
    """

    def __init__(self, replica_id: str, policy: HealthPolicy):
        self.replica_id = replica_id
        self.policy = policy
        self.state = "admitted"  # optimistic start: route until proven sick
        self.payload: dict | None = None
        self.last_ok: float | None = None
        self.last_failure: float | None = None
        self.ejected_at: float | None = None
        self.ejections = 0
        self.probe_inflight = 0
        self.probe_successes = 0

    # -- lattice -------------------------------------------------------
    def components(self, now: float) -> dict:
        reachable = 1.0
        if self.last_ok is None:
            reachable = 0.0 if self.last_failure is not None else 1.0
        else:
            if self.last_failure is not None and self.last_failure >= self.last_ok:
                reachable = 0.0
            elif now - self.last_ok > self.policy.stale_after_s:
                reachable = 0.0
        out = {"reachable": reachable}
        payload = self.payload
        if payload is None:
            return out
        out["admission"] = 0.0 if payload.get("status") == "draining" else 1.0
        out["breaker"] = _BREAKER_SCORES.get(payload.get("breaker"), 0.0)
        out["trust_breaker"] = _BREAKER_SCORES.get(payload.get("trust_breaker"), 0.0)
        trust = payload.get("trust")
        ewma = trust.get("ewma") if isinstance(trust, dict) else None
        out["trust"] = 1.0 if ewma is None else min(max(float(ewma), 0.0), 1.0)
        limit = payload.get("queue_limit") or 0
        depth = payload.get("queue_depth") or 0
        out["queue"] = (
            max(0.0, 1.0 - float(depth) / float(limit)) if limit else 1.0
        )
        return out

    def score(self, now: float) -> float:
        return min(self.components(now).values())

    # -- transitions ---------------------------------------------------
    def _eject(self, now: float) -> None:
        if self.state != "ejected":
            self.ejections += 1
        self.state = "ejected"
        self.ejected_at = now
        self.probe_inflight = 0
        self.probe_successes = 0

    def _maybe_probe(self, now: float) -> None:
        if self.state != "ejected":
            return
        quiet_since = max(
            self.ejected_at if self.ejected_at is not None else 0.0,
            self.last_failure if self.last_failure is not None else 0.0,
        )
        if now - quiet_since >= self.policy.readmit_after_s:
            self.state = "probing"
            self.probe_inflight = 0
            self.probe_successes = 0

    def _probe_success(self) -> None:
        self.probe_successes += 1
        if self.probe_successes >= self.policy.probe_successes:
            self.state = "admitted"

    def observe(self, payload: dict, now: float) -> None:
        """Fold a successful ``/healthz`` poll into the state machine."""
        self.payload = payload
        self.last_ok = now
        self._maybe_probe(now)
        healthy = self.score(now) >= self.policy.eject_below
        if self.state == "admitted" and not healthy:
            self._eject(now)
        elif self.state == "probing":
            if healthy:
                self._probe_success()
            else:
                self._eject(now)

    def observe_error(self, now: float) -> None:
        """A failed poll: the replica is unreachable until proven live."""
        self.last_failure = now
        if self.state in ("admitted", "probing"):
            self._eject(now)

    def admit(self, now: float) -> bool:
        """May the gateway route a request here right now?"""
        self._maybe_probe(now)
        if self.state == "admitted":
            return True
        if self.state == "probing" and self.probe_inflight < self.policy.probe_max:
            self.probe_inflight += 1
            return True
        return False

    def record_result(self, ok: bool, now: float) -> None:
        """Gateway feedback after a routed request finished or failed."""
        if self.probe_inflight > 0:
            self.probe_inflight -= 1
        if ok:
            if self.state == "probing":
                self._probe_success()
        else:
            self.last_failure = now
            self._eject(now)

    def snapshot(self, now: float) -> dict:
        components = self.components(now)
        return {
            "replica_id": self.replica_id,
            "state": self.state,
            "score": min(components.values()),
            "components": components,
            "ejections": self.ejections,
        }


class FleetHealth:
    """Thread-safe registry of :class:`ReplicaHealth` records."""

    def __init__(self, policy: HealthPolicy | None = None, clock=time.monotonic):
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._replicas: dict[str, ReplicaHealth] = {}

    def _ensure(self, replica_id: str) -> ReplicaHealth:
        record = self._replicas.get(replica_id)
        if record is None:
            record = ReplicaHealth(replica_id, self.policy)
            self._replicas[replica_id] = record
        return record

    def add(self, replica_id: str) -> None:
        with self._lock:
            self._ensure(replica_id)

    def remove(self, replica_id: str) -> None:
        with self._lock:
            self._replicas.pop(replica_id, None)

    def observe(self, replica_id: str, payload: dict) -> None:
        with self._lock:
            self._ensure(replica_id).observe(payload, self._clock())

    def observe_error(self, replica_id: str) -> None:
        with self._lock:
            self._ensure(replica_id).observe_error(self._clock())

    def admit(self, replica_id: str) -> bool:
        with self._lock:
            return self._ensure(replica_id).admit(self._clock())

    def record_result(self, replica_id: str, ok: bool) -> None:
        with self._lock:
            self._ensure(replica_id).record_result(ok, self._clock())

    def state_of(self, replica_id: str) -> str:
        with self._lock:
            return self._ensure(replica_id).state

    def admitted_ids(self) -> list[str]:
        with self._lock:
            return sorted(
                rid for rid, record in self._replicas.items()
                if record.state == "admitted"
            )

    def snapshot(self) -> dict:
        now = self._clock()
        with self._lock:
            return {
                rid: self._replicas[rid].snapshot(now)
                for rid in sorted(self._replicas)
            }
