"""One serve replica as a supervised child process.

A replica is ``python -m repro.cli serve`` bound to an ephemeral port
with three fleet hooks the parent reads back:

* ``--announce`` — after binding, the child atomically writes
  ``{replica_id, host, port, pid}``; the coordinator polls this file and
  matches ``pid`` against the child it just spawned, so a stale announce
  from a previous incarnation is never mistaken for readiness;
* ``--heartbeat`` — the child emits :class:`repro.jobs.supervisor`
  heartbeats the coordinator uses for stall detection;
* SIGTERM → graceful drain (stop admission, finish in-flight, exit).

:class:`ReplicaProcess` owns exactly one incarnation: spawn → ready →
(terminate | kill).  Restarts create a *new* ReplicaProcess so restart
counting and announce freshness stay trivially correct.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ReplicaSpec", "ReplicaProcess"]


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything needed to (re)spawn one replica deterministically."""

    checkpoint: str
    model_name: str = "default"
    host: str = "127.0.0.1"
    workers: int = 1
    queue_depth: int = 64
    max_batch: int = 4
    default_mode: str = "fno"
    require_manifest: bool = False
    trust: str | None = None
    drain_grace: float = 5.0
    extra_args: tuple = ()
    env: dict = field(default_factory=dict)

    def command(self, replica_id: str, announce: Path, heartbeat: Path) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--model", f"{self.model_name}={self.checkpoint}",
            "--host", self.host, "--port", "0",
            "--replica-id", replica_id,
            "--announce", str(announce),
            "--heartbeat", str(heartbeat),
            "--serve-workers", str(self.workers),
            "--queue-depth", str(self.queue_depth),
            "--max-batch", str(self.max_batch),
            "--default-mode", self.default_mode,
            "--drain-grace", f"{self.drain_grace:g}",
        ]
        if self.require_manifest:
            cmd.append("--require-manifest")
        if self.trust is not None:
            cmd.extend(["--trust", self.trust])
        cmd.extend(self.extra_args)
        return cmd

    def with_checkpoint(self, checkpoint: str) -> "ReplicaSpec":
        from dataclasses import replace

        return replace(self, checkpoint=str(checkpoint))


class ReplicaProcess:
    """A single incarnation of a replica child process."""

    def __init__(self, replica_id: str, spec: ReplicaSpec, workdir: Path):
        self.replica_id = replica_id
        self.spec = spec
        self.workdir = Path(workdir)
        self.announce_path = self.workdir / f"{replica_id}.announce.json"
        self.heartbeat_path = self.workdir / f"{replica_id}.heartbeat.json"
        self.log_path = self.workdir / f"{replica_id}.log"
        self.proc: subprocess.Popen | None = None
        self.address: dict | None = None

    # -- lifecycle -----------------------------------------------------
    def spawn(self) -> None:
        self.workdir.mkdir(parents=True, exist_ok=True)
        # Remove the previous incarnation's announce so readiness can
        # only be satisfied by the child we are about to start.
        self.announce_path.unlink(missing_ok=True)
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(self.spec.env)
        cmd = self.spec.command(self.replica_id, self.announce_path,
                                self.heartbeat_path)
        with open(self.log_path, "ab") as log:  # repro: ignore[RPR008] -- append-only child stdout log handed to Popen, not an artifact; torn tails are acceptable
            self.proc = subprocess.Popen(
                cmd, env=env, stdout=log, stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        self.address = None

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.05) -> dict:
        """Block until the child announces, or raise ``TimeoutError``.

        Readiness requires the announce file's ``pid`` to equal the
        spawned child's pid — an announce left behind by an earlier
        incarnation never counts.
        """
        if self.proc is None:
            raise RuntimeError(f"replica {self.replica_id} was never spawned")
        import json

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"replica {self.replica_id} exited with code "
                    f"{self.proc.returncode} before announcing "
                    f"(log: {self.log_path})"
                )
            try:
                payload = json.loads(self.announce_path.read_text())
            except (FileNotFoundError, ValueError):
                payload = None
            if payload and payload.get("pid") == self.proc.pid:
                self.address = payload
                return payload
            time.sleep(poll)
        raise TimeoutError(
            f"replica {self.replica_id} did not announce within {timeout:g}s"
        )

    # -- state ---------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def returncode(self) -> int | None:
        return self.proc.returncode if self.proc is not None else None

    def base_url(self) -> str | None:
        if not self.address:
            return None
        return f"http://{self.address['host']}:{self.address['port']}"

    # -- teardown ------------------------------------------------------
    def terminate(self, timeout: float = 10.0) -> int | None:
        """SIGTERM → graceful drain; escalate to SIGKILL past ``timeout``."""
        if self.proc is None or self.proc.poll() is not None:
            return self.returncode()
        self.proc.terminate()
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5.0)
        return self.proc.returncode

    def kill(self) -> int | None:
        """SIGKILL — the chaos path: no drain, no goodbye."""
        if self.proc is None or self.proc.poll() is not None:
            return self.returncode()
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10.0)
        return self.proc.returncode
