"""``repro fleet`` — run, inspect, and deploy the replica fleet.

Actions::

    repro fleet up      --model tiny=model.npz --replicas 3   # foreground
    repro fleet status  --gateway http://127.0.0.1:8790
    repro fleet deploy  --gateway ... --checkpoint new.npz

``up`` owns the child processes: it starts the coordinator (spawn +
supervise N replicas) and the gateway (route + health-poll) in this
process and blocks until SIGINT/SIGTERM, then drains the fleet.
``status`` and ``deploy`` are thin clients of a running gateway —
deploys go through the gateway's ``/fleet/deploy`` admin endpoint
because only the ``up`` process holds the coordinator.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["add_fleet_arguments", "run_fleet"]


def add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action", choices=["up", "status", "deploy"],
                        help="up: run coordinator+gateway in the foreground; "
                             "status: query a running gateway; "
                             "deploy: roll a new checkpoint through it")
    parser.add_argument("--model", default=None, metavar="NAME=PATH",
                        help="checkpoint to serve (up)")
    parser.add_argument("--replicas", type=int, default=2, metavar="N",
                        help="replica count (up; default 2)")
    parser.add_argument("--host", default="127.0.0.1", help="gateway bind host")
    parser.add_argument("--port", type=int, default=8790,
                        help="gateway port (0 picks a free one)")
    parser.add_argument("--workdir", default="fleet-state", metavar="DIR",
                        help="announce/heartbeat/journal/log directory (up)")
    parser.add_argument("--serve-workers", type=int, default=1,
                        help="worker threads per replica (up)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-replica bounded queue (up)")
    parser.add_argument("--default-mode", choices=["hybrid", "fno"],
                        default="fno", help="rollout mode replicas default to")
    parser.add_argument("--require-manifest", action="store_true",
                        help="up: replicas refuse unmanifested checkpoints; "
                             "deploy: reject candidates without a verifiable "
                             "lineage manifest (the deploy gate)")
    parser.add_argument("--trust", nargs="?", const="default",
                        metavar="POLICY_JSON",
                        help="enable per-request trust scoring on replicas "
                             "(feeds the gateway health lattice and canary)")
    parser.add_argument("--gateway", default="http://127.0.0.1:8790",
                        metavar="URL", help="gateway base URL (status/deploy)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="new checkpoint to roll out (deploy)")
    parser.add_argument("--canary-threshold", type=float, default=0.5,
                        help="minimum canary trust EWMA before the roll "
                             "continues (deploy)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every gateway request (up)")


def _cmd_up(args) -> int:
    import signal
    import threading
    from pathlib import Path

    from .coordinator import Coordinator
    from .gateway import Gateway
    from .replica import ReplicaSpec

    if not args.model:
        print("error: fleet up requires --model NAME=PATH", file=sys.stderr)
        return 2
    name, _, path = args.model.partition("=")
    if not path:
        name, path = "default", name
    spec = ReplicaSpec(
        checkpoint=path, model_name=name, workers=args.serve_workers,
        queue_depth=args.queue_depth, default_mode=args.default_mode,
        require_manifest=args.require_manifest, trust=args.trust,
    )
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    def on_event(event: dict) -> None:
        print(f"fleet: {json.dumps(event, sort_keys=True)}", flush=True)

    coordinator = Coordinator(spec, args.replicas, workdir, on_event=on_event)
    coordinator.start()

    def deploy_fn(request: dict) -> dict:
        from .deploy import rolling_deploy

        checkpoint = request.get("checkpoint")
        if not checkpoint:
            raise ValueError("deploy request must name a checkpoint")
        return rolling_deploy(
            coordinator, checkpoint, probes=request.get("probes", ()),
            require_manifest=bool(request.get("require_manifest", True)),
            canary_threshold=float(request.get("canary_threshold", 0.5)),
            on_event=on_event,
        )

    gateway = Gateway(
        coordinator, host=args.host, port=args.port,
        journal_path=workdir / "requests.jsonl", verbose=args.verbose,
        deploy_fn=deploy_fn,
    )
    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, lambda *_: stop.set())
        except ValueError:  # repro: ignore[RPR005] -- not the main thread (embedded use): no signal hook
            pass
    gateway.start()
    print(f"repro-fleet gateway on {gateway.base_url()} "
          f"({args.replicas} replicas of {name}={path})", flush=True)
    try:
        stop.wait()
    finally:
        print("fleet: draining", flush=True)
        gateway.stop()
        coordinator.stop()
    return 0


def _cmd_status(args) -> int:
    from .gateway import http_get_json

    try:
        status = http_get_json(args.gateway.rstrip("/") + "/fleet/status",
                               timeout=10.0)
    except (OSError, ValueError) as exc:
        print(f"error: cannot reach gateway {args.gateway}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(status, indent=2, sort_keys=True))
    admitted = status.get("admitted", [])
    total = len(status.get("replicas", {}))
    print(f"fleet: {len(admitted)}/{total} replicas admitted", file=sys.stderr)
    return 0 if admitted else 1


def _cmd_deploy(args) -> int:
    import urllib.error
    import urllib.request

    if not args.checkpoint:
        print("error: fleet deploy requires --checkpoint", file=sys.stderr)
        return 2
    body = json.dumps({
        "checkpoint": args.checkpoint,
        "require_manifest": bool(args.require_manifest),
        "canary_threshold": args.canary_threshold,
    }).encode()
    req = urllib.request.Request(
        args.gateway.rstrip("/") + "/fleet/deploy", data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=600.0) as resp:
            report = json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        report = json.loads(exc.read() or b"{}")
    except (OSError, ValueError) as exc:
        print(f"error: cannot reach gateway {args.gateway}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    if report.get("ok"):
        print(f"deploy: complete ({len(report.get('updated', []))} replicas "
              f"on {args.checkpoint})", file=sys.stderr)
        return 0
    print(f"deploy: rejected at {report.get('stage')}: "
          f"{report.get('error')}", file=sys.stderr)
    return 1


def run_fleet(args) -> int:
    if args.action == "up":
        return _cmd_up(args)
    if args.action == "status":
        return _cmd_status(args)
    return _cmd_deploy(args)
