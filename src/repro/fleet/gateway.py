"""Health-routing HTTP gateway: one stable endpoint over N replicas.

Routing is three orthogonal pieces, composed in :class:`GatewayRouter`
(pure logic, fully testable without sockets):

* placement — the consistent :class:`~repro.fleet.hashring.HashRing`
  maps a request's route key to a preference-ordered replica list;
* admission — :class:`~repro.fleet.health.FleetHealth` decides which
  replicas may receive traffic (ejected replicas are skipped, probing
  replicas get bounded half-open traffic);
* retries — one *attempt* walks the preference list over admitted
  replicas; connection failures fail over to the ring successor
  immediately, 503s (queue-full, draining, breaker-open) carry their
  ``Retry-After`` into the next attempt's pause via
  :func:`repro.faults.call_with_retry`.

Every request is journaled (``submitted`` → ``responded``/``failed``)
in an append-only JSONL :class:`RequestJournal`; the ``replica_kill``
chaos scenario replays the journal to prove exactly-once response
semantics across SIGKILLs.  Re-execution on another replica is safe
because ``/predict`` is pure: same checkpoint + same window → same
snapshots (the repo's determinism contract).

:class:`Gateway` wraps the router in a ``ThreadingHTTPServer`` with a
background health poller, and exposes ``/predict``, ``/healthz``,
``/fleet/status``, ``/fleet/deploy`` and ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .. import obs
from ..faults.policy import RetryPolicy, call_with_retry
from .hashring import HashRing
from .health import FleetHealth, HealthPolicy

__all__ = ["ReplicaUnavailable", "RequestJournal", "GatewayRouter", "Gateway",
           "http_transport"]

_ROUTER_RETRY = RetryPolicy(attempts=4, backoff=0.1, factor=2.0,
                            max_backoff=1.0, retry_on=())


class ReplicaUnavailable(RuntimeError):
    """No admitted replica produced a response for this attempt."""

    def __init__(self, detail: str, retry_after: float = 0.1):
        super().__init__(f"no replica available: {detail}")
        self.retry_after = max(float(retry_after), 0.0)


class RequestJournal:
    """Append-only request log proving exactly-once response semantics.

    Events are ``{"event", "id", ...}`` dicts; with a ``path`` they are
    additionally persisted as JSONL (flushed per line, so a crashed
    gateway still yields a replayable journal).  :meth:`verify` folds
    the log into the no-loss/no-duplication verdict the chaos harness
    asserts on.
    """

    def __init__(self, path=None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._fh = open(self.path, "a", encoding="utf-8") if self.path else None

    def record(self, event: str, request_id: str, **extra) -> None:
        entry = {"event": event, "id": str(request_id), **extra}
        with self._lock:
            self._events.append(entry)
            if self._fh is not None:
                self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    @staticmethod
    def load(path) -> "RequestJournal":
        journal = RequestJournal()
        with open(path, encoding="utf-8") as fh:
            journal._events = [json.loads(line) for line in fh if line.strip()]
        return journal

    def verify(self) -> dict:
        """No request lost (0 responses) or duplicated (>1 terminal)."""
        submitted: dict[str, int] = {}
        terminal: dict[str, int] = {}
        failed: dict[str, int] = {}
        for entry in self.events():
            rid = entry["id"]
            if entry["event"] == "submitted":
                submitted[rid] = submitted.get(rid, 0) + 1
            elif entry["event"] == "responded":
                terminal[rid] = terminal.get(rid, 0) + 1
            elif entry["event"] == "failed":
                terminal[rid] = terminal.get(rid, 0) + 1
                failed[rid] = failed.get(rid, 0) + 1
        lost = sorted(r for r, n in submitted.items() if terminal.get(r, 0) < n)
        duplicated = sorted(
            r for r, n in terminal.items() if n > submitted.get(r, 0)
        )
        return {
            "submitted": len(submitted),
            "responded": sum(terminal.values()) - sum(failed.values()),
            "failed": sum(failed.values()),
            "lost": lost,
            "duplicated": duplicated,
            "exactly_once": not lost and not duplicated and not failed,
        }


def http_transport(url: str, body: bytes, headers: dict,
                   timeout: float = 30.0):
    """POST ``body`` to ``url``; return ``(status, headers, body)``.

    4xx/5xx come back as ordinary statuses (no exception); only
    connection-level failures raise ``OSError`` — exactly the split the
    router needs to tell "replica answered badly" from "replica gone".
    """
    req = urllib.request.Request(url, data=body, method="POST",
                                 headers={"Content-Type": "application/json",
                                          **headers})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()
    except urllib.error.URLError as exc:
        raise OSError(f"connect {url}: {exc.reason}") from exc


def http_get_json(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


class GatewayRouter:
    """Consistent-hash + health-gated routing with bounded failover.

    ``endpoints`` is a zero-arg callable returning the live routing
    table ``{replica_id: base_url}`` (typically ``coordinator.urls``);
    ``transport`` has :func:`http_transport`'s signature so tests can
    swap in an in-memory fake.
    """

    def __init__(self, endpoints, health: FleetHealth | None = None,
                 journal: RequestJournal | None = None,
                 retry: RetryPolicy = _ROUTER_RETRY, vnodes: int = 64,
                 transport=http_transport, request_timeout: float = 30.0,
                 sleep=time.sleep):
        self.endpoints = endpoints
        self.health = health or FleetHealth()
        self.journal = journal or RequestJournal()
        self.retry = retry
        from dataclasses import replace

        self._retry_policy = replace(retry, retry_on=(ReplicaUnavailable,))
        self.transport = transport
        self.request_timeout = float(request_timeout)
        self._sleep = sleep
        self._ring = HashRing(vnodes=vnodes)
        self._ring_lock = threading.Lock()
        registry = obs.metrics_registry()
        self._m_requests = registry.counter("fleet_gateway_requests_total")
        self._m_failovers = registry.counter("fleet_gateway_failovers_total")
        self._m_unrouted = registry.counter("fleet_gateway_unrouted_total")

    # -- membership ----------------------------------------------------
    def _sync_ring(self, ids) -> None:
        with self._ring_lock:
            current = self._ring.nodes()
            for rid in set(ids) - current:
                self._ring.add(rid)
                self.health.add(rid)
            for rid in current - set(ids):
                self._ring.remove(rid)

    def preference(self, route_key: str) -> list[str]:
        self._sync_ring(self.endpoints().keys())
        with self._ring_lock:
            return self._ring.preference(route_key)

    # -- routing -------------------------------------------------------
    def _attempt(self, route_key: str, body: bytes, headers: dict,
                 tried: set) -> tuple[str, int, dict, bytes]:
        """One walk of the preference list; raises ReplicaUnavailable."""
        urls = self.endpoints()
        prefs = [rid for rid in self.preference(route_key) if rid in urls]
        if not prefs:
            raise ReplicaUnavailable("fleet has no live replicas")
        order = [rid for rid in prefs if rid not in tried] or prefs
        detail, hint = "all replicas ejected or busy", 0.1
        for rid in order:
            if not self.health.admit(rid):
                continue
            tried.add(rid)
            try:
                status, resp_headers, data = self.transport(
                    urls[rid] + "/predict", body, headers,
                    timeout=self.request_timeout,
                )
            except OSError as exc:
                # Connection-level failure: the replica is gone (killed,
                # restarting).  Eject it and fail over inside this same
                # attempt — no sleep, the ring successor is right there.
                self.health.record_result(rid, False)
                self._m_failovers.inc()
                detail = f"{rid}: {exc}"
                continue
            if status == 503:
                # Backpressure (queue full / draining / breaker open):
                # the replica is alive but refusing; honor its hint on
                # the *next* attempt rather than ejecting it.
                self.health.record_result(rid, True)
                self._m_failovers.inc()
                try:
                    hint = float(resp_headers.get("Retry-After", hint))
                except (TypeError, ValueError):  # repro: ignore[RPR005] -- malformed Retry-After header: keep the previous hint
                    pass
                detail = f"{rid}: 503"
                continue
            self.health.record_result(rid, True)
            return rid, status, resp_headers, data
        raise ReplicaUnavailable(detail, retry_after=hint)

    def predict(self, body: bytes, route_key: str,
                request_id: str) -> tuple[int, dict, bytes]:
        """Route one /predict body; journal exactly one terminal event."""
        self._m_requests.inc()
        self.journal.record("submitted", request_id, key=str(route_key))
        tried: set = set()
        try:
            replica, status, resp_headers, data = call_with_retry(
                self._attempt, route_key, body, {}, tried,
                policy=self._retry_policy, sleep=self._sleep,
                label="fleet.predict",
            )
        except ReplicaUnavailable as exc:
            self._m_unrouted.inc()
            self.journal.record("failed", request_id, error=str(exc))
            payload = json.dumps(
                {"error": str(exc), "retry_after_s": exc.retry_after}
            ).encode()
            return 503, {"Retry-After": f"{exc.retry_after:g}"}, payload
        self.journal.record("responded", request_id, replica=replica,
                            status=int(status))
        return status, resp_headers, data

    # -- views ---------------------------------------------------------
    def status(self) -> dict:
        self._sync_ring(self.endpoints().keys())
        health = self.health.snapshot()
        registry = obs.metrics_registry()
        for rid, snap in health.items():
            registry.gauge("fleet_replica_health_score",
                           labels={"replica": rid}).set(snap["score"])
        return {
            "replicas": health,
            "admitted": self.health.admitted_ids(),
            "endpoints": dict(sorted(self.endpoints().items())),
            "journal": self.journal.verify(),
        }


class _GatewayHandler(BaseHTTPRequestHandler):
    server_version = "repro-fleet-gateway/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def gateway(self) -> "Gateway":
        return self.server.gateway  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            if name.lower() not in ("content-type", "content-length",
                                    "transfer-encoding", "connection",
                                    "server", "date"):
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        self._send(status, json.dumps(payload).encode(), "application/json",
                   headers)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/healthz":
            status = self.gateway.router.status()
            self._send_json(200, {
                "status": "ok" if status["admitted"] else "degraded",
                "role": "gateway",
                "replicas": {rid: snap["state"]
                             for rid, snap in status["replicas"].items()},
            })
        elif self.path == "/fleet/status":
            status = self.gateway.router.status()
            status["coordinator"] = self.gateway.coordinator.status()["replicas"]
            self._send_json(200, status)
        elif self.path == "/metrics":
            self._send(200, obs.render_prometheus().encode(),
                       "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/predict":
            self._predict()
        elif self.path == "/fleet/deploy":
            self._deploy()
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def _predict(self) -> None:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            self._send_json(400, {"error": "missing request body"})
            return
        body = self.rfile.read(length)
        request_id = self.headers.get("X-Request-Id") or ""
        if not request_id:
            request_id = self.gateway.next_request_id()
        # Route key from a header when given (no body parse on the hot
        # path); otherwise fall back to hashing the raw body bytes.
        route_key = self.headers.get("X-Route-Key") or ""
        if not route_key:
            import hashlib

            route_key = hashlib.sha256(body).hexdigest()[:16]
        status, headers, data = self.gateway.router.predict(
            body, route_key, request_id
        )
        self._send(status, data,
                   headers.get("Content-Type", "application/json"),
                   {**headers, "X-Request-Id": request_id,
                    "X-Served-By": "fleet-gateway"})

    def _deploy(self) -> None:
        length = int(self.headers.get("Content-Length", 0))
        try:
            body = json.loads(self.rfile.read(length)) if length else {}
            result = self.gateway.deploy(body)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        code = 200 if result.get("ok") else 409
        self._send_json(code, result)


class Gateway:
    """HTTP front door + health poller around a :class:`GatewayRouter`."""

    def __init__(self, coordinator, host: str = "127.0.0.1", port: int = 0,
                 health_policy: HealthPolicy | None = None,
                 journal_path=None, retry: RetryPolicy = _ROUTER_RETRY,
                 poll_interval: float = 0.2, verbose: bool = False,
                 deploy_fn=None):
        self.coordinator = coordinator
        self.poll_interval = float(poll_interval)
        self._deploy_fn = deploy_fn
        self.router = GatewayRouter(
            coordinator.urls,
            health=FleetHealth(health_policy or HealthPolicy()),
            journal=RequestJournal(journal_path), retry=retry,
        )
        self._server = ThreadingHTTPServer((host, port), _GatewayHandler)
        self._server.daemon_threads = True
        self._server.gateway = self  # type: ignore[attr-defined]
        self._server.verbose = verbose  # type: ignore[attr-defined]
        self._id_lock = threading.Lock()
        self._id_counter = 0
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- ids -----------------------------------------------------------
    def next_request_id(self) -> str:
        with self._id_lock:
            self._id_counter += 1
            return f"g-{self._id_counter:08d}"

    # -- health poller -------------------------------------------------
    def _poll_once(self) -> None:
        for rid, url in sorted(self.coordinator.urls().items()):
            try:
                payload = http_get_json(url + "/healthz", timeout=2.0)
            except (OSError, ValueError):
                self.router.health.observe_error(rid)
            else:
                self.router.health.observe(rid, payload)

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self._poll_once()

    # -- deploy admin --------------------------------------------------
    def deploy(self, request: dict) -> dict:
        if self._deploy_fn is None:
            raise ValueError("gateway has no deploy hook configured")
        return self._deploy_fn(request)

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "Gateway":
        self._poll_once()  # prime health before taking traffic
        for target, name in ((self._server.serve_forever, "repro-gateway-http"),
                             (self._poll_loop, "repro-gateway-poll")):
            thread = threading.Thread(target=target, daemon=True, name=name)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self.router.journal.close()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
