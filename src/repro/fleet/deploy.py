"""Rolling, manifest-gated deployment with canary probation + rollback.

``rolling_deploy`` replaces the fleet's checkpoint one replica at a
time, guarded at three points:

1. **manifest gate** — before *any* replica is touched, the new
   checkpoint's lineage manifest must verify
   (:func:`repro.utils.artifacts.verify_manifest`): checksum matches
   the weights on disk, and — when ``require_manifest`` — a missing
   sidecar is a hard rejection.  A rogue checkpoint never reaches a
   replica.
2. **canary probation** — the first replica is restarted on the new
   checkpoint and probed with caller-supplied deterministic requests;
   the probe verdict folds response status, output finiteness, and the
   replica's trust-score EWMA from ``/healthz`` (the same signal the
   gateway's health lattice routes on).  A canary scoring below
   ``canary_threshold`` triggers **auto-rollback** to the previous
   checkpoint and aborts the deploy.
3. **per-replica readiness** — each subsequent replica must announce
   and answer ``/healthz`` before the roll moves on, so at most one
   replica is out of service at any moment.

The function is pure orchestration over :class:`Coordinator` — the
chaos scenario ``bad_deploy`` drives it end-to-end against live child
processes, and the unit tests drive it with a fake coordinator.
"""

from __future__ import annotations

import numpy as np

from ..utils.artifacts import CheckpointError, verify_manifest
from .gateway import http_get_json, http_transport

__all__ = ["DeployError", "rolling_deploy", "probe_replica"]


class DeployError(RuntimeError):
    """A deploy was rejected (gate) or aborted (canary rollback)."""


def _finite(payload: dict) -> bool:
    velocity = payload.get("velocity")
    if velocity is None:
        return False
    try:
        return bool(np.all(np.isfinite(np.asarray(velocity, dtype=np.float64))))
    except (TypeError, ValueError):
        return False


def probe_replica(url: str, probes, canary_threshold: float = 0.5,
                  transport=http_transport, get_json=http_get_json) -> dict:
    """Send deterministic probe requests at one replica; fold a verdict.

    Healthy means: every probe answers 200 with finite snapshots, the
    replica reports ``status: ok``, and — when trust scoring is active —
    its trust EWMA clears ``canary_threshold``.
    """
    import json

    results = []
    for body in probes:
        data = json.dumps(body).encode()
        try:
            status, _, raw = transport(url + "/predict", data, {})
            payload = json.loads(raw) if raw else {}
        except (OSError, ValueError) as exc:
            results.append({"ok": False, "error": str(exc)})
            continue
        results.append({
            "ok": status == 200 and _finite(payload),
            "status": int(status),
        })
    try:
        healthz = get_json(url + "/healthz")
    except (OSError, ValueError) as exc:
        return {"healthy": False, "probes": results, "error": str(exc)}
    trust = healthz.get("trust") or {}
    ewma = trust.get("ewma")
    healthy = (
        all(r["ok"] for r in results)
        and healthz.get("status") == "ok"
        and (ewma is None or float(ewma) >= canary_threshold)
    )
    return {"healthy": healthy, "probes": results, "trust_ewma": ewma,
            "status": healthz.get("status")}


def rolling_deploy(coordinator, checkpoint: str, probes=(),
                   require_manifest: bool = True,
                   canary_threshold: float = 0.5,
                   transport=http_transport, get_json=http_get_json,
                   on_event=None) -> dict:
    """Roll ``checkpoint`` across the fleet; gate, canary, auto-rollback.

    Returns a report dict with ``ok``, the ``stage`` reached, and the
    per-replica actions taken.  Never leaves the fleet mixed: either
    every replica runs the new checkpoint, or every replica is back on
    its previous one.
    """
    checkpoint = str(checkpoint)

    def emit(event: str, **extra) -> None:
        if on_event is not None:
            on_event({"event": event, **extra})

    # Stage 1: the manifest gate — refuse before touching any replica.
    try:
        manifest = verify_manifest(checkpoint, required=require_manifest)
    except (CheckpointError, FileNotFoundError, ValueError) as exc:
        emit("manifest-rejected", checkpoint=checkpoint, error=str(exc))
        return {"ok": False, "stage": "manifest-gate", "checkpoint": checkpoint,
                "error": str(exc), "updated": [], "rolled_back": []}
    emit("manifest-ok", checkpoint=checkpoint,
         lineage=(manifest or {}).get("config_hash"))

    order = coordinator.replica_ids()
    old_specs = {rid: coordinator.spec_of(rid) for rid in order}
    updated: list[str] = []

    def rollback(reason: str, stage: str, detail: dict) -> dict:
        rolled = []
        for rid in reversed(updated):
            coordinator.restart_replica(rid, old_specs[rid])
            rolled.append(rid)
            emit("rollback", replica=rid,
                 checkpoint=old_specs[rid].checkpoint)
        return {"ok": False, "stage": stage, "checkpoint": checkpoint,
                "error": reason, "updated": [], "rolled_back": rolled,
                **detail}

    for i, rid in enumerate(order):
        is_canary = i == 0
        new_spec = old_specs[rid].with_checkpoint(checkpoint)
        try:
            coordinator.restart_replica(rid, new_spec)
        except (RuntimeError, TimeoutError) as exc:
            return rollback(f"replica {rid} failed to start: {exc}",
                            "canary" if is_canary else "roll", {})
        updated.append(rid)
        emit("replica-updated", replica=rid, canary=is_canary)
        url = coordinator.urls().get(rid)
        if url is None:
            return rollback(f"replica {rid} has no address after restart",
                            "canary" if is_canary else "roll", {})
        verdict = probe_replica(
            url, probes if is_canary else (),
            canary_threshold=canary_threshold,
            transport=transport, get_json=get_json,
        )
        if not verdict["healthy"]:
            emit("canary-failed" if is_canary else "replica-unhealthy",
                 replica=rid, verdict=verdict)
            return rollback(
                f"{'canary' if is_canary else 'replica'} {rid} unhealthy "
                f"on {checkpoint}",
                "canary" if is_canary else "roll",
                {"verdict": verdict},
            )
        if is_canary:
            emit("canary-passed", replica=rid, verdict=verdict)

    emit("deploy-complete", checkpoint=checkpoint, updated=list(updated))
    return {"ok": True, "stage": "complete", "checkpoint": checkpoint,
            "updated": updated, "rolled_back": [],
            "lineage": (manifest or {}).get("config_hash")}
