"""Supervised multi-replica serving: coordinator, gateway, deploys.

The fleet layer turns the single-process :mod:`repro.serve` service
into an operable unit of N supervised replicas behind one endpoint:

* :class:`HashRing` — consistent hashing of request keys to replicas
  (minimal remapping when a replica is ejected or added).
* :class:`HealthPolicy`/:class:`FleetHealth` — a min-lattice health
  score per replica (reachability, breaker + trust-breaker state,
  trust EWMA, queue pressure) with eject / half-open probe / readmit
  transitions.
* :class:`ReplicaSpec`/:class:`ReplicaProcess` — one serve replica as
  a child process with announce/heartbeat/graceful-drain hooks.
* :class:`Coordinator` — spawns and supervises the replicas: restart
  budgets with exponential backoff, heartbeat stall detection, and
  pause/replace hooks for deploys.
* :class:`GatewayRouter`/:class:`Gateway` — the HTTP front door:
  consistent-hash routing over admitted replicas, in-attempt failover,
  Retry-After honoring retries, and an exactly-once
  :class:`RequestJournal`.
* :func:`rolling_deploy` — manifest-gated rolling deploys with canary
  probation and auto-rollback.

``repro fleet up|status|deploy`` is the CLI; the ``replica_kill`` and
``bad_deploy`` chaos scenarios exercise the whole stack end-to-end.
"""

from .coordinator import Coordinator
from .deploy import DeployError, probe_replica, rolling_deploy
from .gateway import (
    Gateway,
    GatewayRouter,
    ReplicaUnavailable,
    RequestJournal,
    http_transport,
)
from .hashring import HashRing
from .health import FleetHealth, HealthPolicy, ReplicaHealth
from .replica import ReplicaProcess, ReplicaSpec

__all__ = [
    "HashRing",
    "HealthPolicy", "ReplicaHealth", "FleetHealth",
    "ReplicaSpec", "ReplicaProcess",
    "Coordinator",
    "ReplicaUnavailable", "RequestJournal", "GatewayRouter", "Gateway",
    "http_transport",
    "DeployError", "probe_replica", "rolling_deploy",
]
