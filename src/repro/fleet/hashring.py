"""Consistent-hash ring: request keys → replicas, with minimal churn.

Each replica owns ``vnodes`` pseudo-random points on a 64-bit ring
(sha256 of ``"{replica}#{v}"`` — no process state, no RNG, so every
gateway instance computes the identical ring).  A request key routes to
the first replica point clockwise from the key's own hash.  Ejecting a
replica only re-maps the keys that replica owned; everyone else keeps
their assignment — the property the fleet's cache/solver locality and
the chaos determinism checks both lean on.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """64-bit ring position of a label; stable across processes."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable-per-mutation sorted ring of replica virtual nodes.

    Not thread-safe by itself: the gateway mutates membership only under
    its own lock, and routing reads a snapshot tuple.
    """

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []  # sorted (point, node)
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    def add(self, node: str) -> None:
        node = str(node)
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            entry = (_point(f"{node}#{v}"), node)
            bisect.insort(self._ring, entry)

    def remove(self, node: str) -> None:
        node = str(node)
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- routing -------------------------------------------------------
    def preference(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct replicas in ring order from ``key``'s successor.

        The first entry is the key's owner; the rest are the fallback
        order a gateway walks when retrying on another replica.  The
        list is a pure function of (membership, key) — retries are as
        deterministic as first placements.
        """
        if not self._ring:
            return []
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect.bisect_right(self._ring, (_point(str(key)), chr(0x10FFFF)))
        seen: list[str] = []
        marked: set[str] = set()
        n = len(self._ring)
        for i in range(n):
            node = self._ring[(start + i) % n][1]
            if node not in marked:
                marked.add(node)
                seen.append(node)
                if len(seen) >= want:
                    break
        return seen

    def route(self, key: str, healthy=None) -> str | None:
        """Owner of ``key`` among ``healthy`` nodes (all, when ``None``).

        ``healthy`` is a container supporting ``in``; the walk skips
        ejected replicas, so keys owned by a sick replica spill to their
        ring successor and *only* those keys move.
        """
        for node in self.preference(key):
            if healthy is None or node in healthy:
                return node
        return None
