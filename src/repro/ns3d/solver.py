"""Pseudo-spectral solver for 3-D decaying turbulence (velocity form).

Integrates the incompressible Navier–Stokes equations in rotational form

    ∂u/∂t = P[ u × ω ] + ν ∇²u

where ``P`` is the Leray projection (which also absorbs the pressure
gradient of the rotational form's Bernoulli head).  Nonlinear term
pseudo-spectral with 2/3 dealiasing; time stepping is RK4 with an
integrating factor for the viscous term, mirroring the 2-D solver.

This is the substrate for the paper's proposed 3-D extension; grids of
16³–32³ run comfortably on CPU.
"""

from __future__ import annotations

import numpy as np

from .fields import divergence3d, enstrophy3d, kinetic_energy3d, vorticity3d, wavenumbers3d

__all__ = ["SpectralNSSolver3D"]


class SpectralNSSolver3D:
    """3-D periodic incompressible Navier–Stokes integrator."""

    def __init__(
        self,
        n: int,
        viscosity: float,
        length: float = 2.0 * np.pi,
        dt: float | None = None,
        dealias: bool = True,
    ):
        if n < 4:
            raise ValueError("grid too small")
        if viscosity <= 0:
            raise ValueError("viscosity must be positive")
        self.n = int(n)
        self.viscosity = float(viscosity)
        self.length = float(length)
        self.dt = dt
        self.time = 0.0
        self.dealias = bool(dealias)

        kx, ky, kz, k2 = wavenumbers3d(n, length)
        self._k = (
            np.broadcast_to(kx, k2.shape),
            np.broadcast_to(ky, k2.shape),
            np.broadcast_to(kz, k2.shape),
        )
        self._k2 = k2
        with np.errstate(divide="ignore", invalid="ignore"):
            self._inv_k2 = np.where(k2 > 0, 1.0 / np.where(k2 > 0, k2, 1.0), 0.0)
        k_cut = (2.0 / 3.0) * (np.pi / (length / n))
        self._mask = (
            (np.abs(self._k[0]) < k_cut)
            & (np.abs(self._k[1]) < k_cut)
            & (np.abs(self._k[2]) < k_cut)
        ).astype(float)
        self._u_hat = np.zeros((3,) + k2.shape, dtype=complex)

    # ------------------------------------------------------------------
    @property
    def velocity(self) -> np.ndarray:
        return np.stack(
            [np.fft.irfftn(self._u_hat[c], s=(self.n,) * 3, axes=(-3, -2, -1)) for c in range(3)]
        )

    @property
    def vorticity(self) -> np.ndarray:
        return vorticity3d(self.velocity, self.length)

    def set_velocity(self, u: np.ndarray, reset_time: bool = False) -> None:
        """Set the state (projected divergence-free)."""
        u = np.asarray(u, dtype=float)
        if u.shape != (3, self.n, self.n, self.n):
            raise ValueError(f"expected shape {(3, self.n, self.n, self.n)}, got {u.shape}")
        from .fields import nyquist_free_mask

        mask = nyquist_free_mask(self.n)
        u_hat = np.stack([np.fft.rfftn(u[c]) * mask for c in range(3)])
        self._u_hat = self._project(u_hat)
        if reset_time:
            self.time = 0.0

    # ------------------------------------------------------------------
    def _project(self, u_hat: np.ndarray) -> np.ndarray:
        k_dot_u = sum(self._k[c] * u_hat[c] for c in range(3))
        return np.stack(
            [u_hat[c] - self._k[c] * k_dot_u * self._inv_k2 for c in range(3)]
        )

    def _nonlinear(self, u_hat: np.ndarray) -> np.ndarray:
        """P[ u × ω ] in spectral space, dealiased."""
        s = (self.n,) * 3
        u = np.stack([np.fft.irfftn(u_hat[c], s=s, axes=(-3, -2, -1)) for c in range(3)])
        w = np.stack(
            [
                np.fft.irfftn(
                    1j * self._k[1] * u_hat[2] - 1j * self._k[2] * u_hat[1],
                    s=s, axes=(-3, -2, -1),
                ),
                np.fft.irfftn(
                    1j * self._k[2] * u_hat[0] - 1j * self._k[0] * u_hat[2],
                    s=s, axes=(-3, -2, -1),
                ),
                np.fft.irfftn(
                    1j * self._k[0] * u_hat[1] - 1j * self._k[1] * u_hat[0],
                    s=s, axes=(-3, -2, -1),
                ),
            ]
        )
        cross = np.stack(
            [
                u[1] * w[2] - u[2] * w[1],
                u[2] * w[0] - u[0] * w[2],
                u[0] * w[1] - u[1] * w[0],
            ]
        )
        cross_hat = np.stack([np.fft.rfftn(cross[c]) for c in range(3)])
        if self.dealias:
            cross_hat *= self._mask
        return self._project(cross_hat)

    # ------------------------------------------------------------------
    def stable_dt(self) -> float:
        u = self.velocity
        umax = float(np.max(np.abs(u)))
        h = self.length / self.n
        return min(0.5 * h / max(umax, 1e-12), 0.2 * h * h / self.viscosity)

    def step(self) -> None:
        dt = self.dt if self.dt is not None else self.stable_dt()
        e_half = np.exp(-0.5 * self.viscosity * self._k2 * dt)
        e_full = e_half * e_half
        u = self._u_hat
        k1 = self._nonlinear(u)
        k2 = self._nonlinear(e_half * (u + 0.5 * dt * k1))
        k3 = self._nonlinear(e_half * u + 0.5 * dt * k2)
        k4 = self._nonlinear(e_full * u + dt * e_half * k3)
        self._u_hat = e_full * u + (dt / 6.0) * (e_full * k1 + 2.0 * e_half * (k2 + k3) + k4)
        self.time += dt

    def advance(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        target = self.time + duration
        while self.time < target - 1e-12:
            dt = self.dt if self.dt is not None else self.stable_dt()
            saved = self.dt
            self.dt = min(dt, target - self.time)
            try:
                self.step()
            finally:
                self.dt = saved

    # ------------------------------------------------------------------
    def diagnostics(self) -> dict[str, float]:
        u = self.velocity
        return {
            "time": self.time,
            "kinetic_energy": kinetic_energy3d(u),
            "enstrophy": enstrophy3d(u, self.length),
            "max_divergence": float(np.max(np.abs(divergence3d(u, self.length)))),
        }
