"""3-D periodic incompressible Navier–Stokes substrate.

Implements the paper's proposed 3-D extension (Sec. VII): the flow
substrate for "3D FNO for spatial and channels for temporal dimensions".
"""

from .fields import (
    divergence3d,
    nyquist_free_mask,
    enstrophy3d,
    kinetic_energy3d,
    project_solenoidal,
    random_solenoidal_velocity,
    vorticity3d,
    wavenumbers3d,
)
from .solver import SpectralNSSolver3D

__all__ = [
    "SpectralNSSolver3D",
    "wavenumbers3d", "project_solenoidal", "divergence3d", "vorticity3d",
    "kinetic_energy3d", "enstrophy3d", "random_solenoidal_velocity", "nyquist_free_mask",
]
