"""Field utilities for 3-D periodic incompressible flow.

Supports the paper's proposed 3-D extension (Sec. VII: "an extension of
the present framework to 3D should be straightforward with 3D FNO for
spatial and channels for temporal dimensions").  Velocity fields have
shape ``(3, n, n, n)`` on a periodic cube ``[0, L)³``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "wavenumbers3d",
    "project_solenoidal",
    "divergence3d",
    "vorticity3d",
    "kinetic_energy3d",
    "enstrophy3d",
    "random_solenoidal_velocity",
]


def wavenumbers3d(n: int, length: float = 2.0 * np.pi):
    """``(kx, ky, kz, k2)`` meshes in rfftn layout ``(n, n, n//2+1)``."""
    k_full = 2.0 * np.pi / length * np.fft.fftfreq(n, d=1.0 / n)
    k_half = 2.0 * np.pi / length * np.fft.rfftfreq(n, d=1.0 / n)
    kx = k_full[:, None, None]
    ky = k_full[None, :, None]
    kz = k_half[None, None, :]
    k2 = kx * kx + ky * ky + kz * kz
    return kx, ky, kz, k2


def _derivative_wavenumbers3d(n: int, length: float):
    """First-derivative multipliers with all Nyquist planes zeroed."""
    kx, ky, kz, _ = wavenumbers3d(n, length)
    kx = np.broadcast_to(kx, (n, n, n // 2 + 1)).copy()
    ky = np.broadcast_to(ky, (n, n, n // 2 + 1)).copy()
    kz = np.broadcast_to(kz, (n, n, n // 2 + 1)).copy()
    if n % 2 == 0:
        for k in (kx, ky, kz):
            k[n // 2, :, :] = 0.0
            k[:, n // 2, :] = 0.0
            k[:, :, -1] = 0.0
    return kx, ky, kz


def nyquist_free_mask(n: int) -> np.ndarray:
    """Mask (rfftn layout) zeroing the Nyquist planes of an even grid.

    The anisotropic ``k kᵀ/k²`` projection factor is not symmetric under
    the sign aliasing of Nyquist modes, so retaining them makes the Leray
    projection non-idempotent through real-transform round-trips; the
    standard convention is to band-limit them away.
    """
    mask = np.ones((n, n, n // 2 + 1))
    if n % 2 == 0:
        mask[n // 2, :, :] = 0.0
        mask[:, n // 2, :] = 0.0
        mask[:, :, -1] = 0.0
    return mask


def project_solenoidal(u: np.ndarray, length: float = 2.0 * np.pi) -> np.ndarray:
    """Leray projection onto divergence-free fields.

    The mean flow (k = 0) is preserved; Nyquist planes are zeroed (see
    :func:`nyquist_free_mask`).
    """
    n = u.shape[-1]
    kx, ky, kz, k2 = wavenumbers3d(n, length)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_k2 = np.where(k2 > 0, 1.0 / np.where(k2 > 0, k2, 1.0), 0.0)
    mask = nyquist_free_mask(n)
    u_hat = np.stack([np.fft.rfftn(u[c]) * mask for c in range(3)])
    k_vec = (kx, ky, kz)
    k_dot_u = sum(k_vec[c] * u_hat[c] for c in range(3))
    out = np.empty_like(u)
    for c in range(3):
        proj = u_hat[c] - k_vec[c] * k_dot_u * inv_k2
        out[c] = np.fft.irfftn(proj, s=u.shape[-3:], axes=(-3, -2, -1))
    return out


def divergence3d(u: np.ndarray, length: float = 2.0 * np.pi) -> np.ndarray:
    """Spectral divergence of ``(3, n, n, n)`` velocity."""
    n = u.shape[-1]
    kx, ky, kz = _derivative_wavenumbers3d(n, length)
    div_hat = (
        1j * kx * np.fft.rfftn(u[0])
        + 1j * ky * np.fft.rfftn(u[1])
        + 1j * kz * np.fft.rfftn(u[2])
    )
    return np.fft.irfftn(div_hat, s=u.shape[-3:], axes=(-3, -2, -1))


def vorticity3d(u: np.ndarray, length: float = 2.0 * np.pi) -> np.ndarray:
    """Spectral curl; returns ``(3, n, n, n)``."""
    n = u.shape[-1]
    kx, ky, kz = _derivative_wavenumbers3d(n, length)
    u_hat = [np.fft.rfftn(u[c]) for c in range(3)]
    s = u.shape[-3:]
    wx = np.fft.irfftn(1j * ky * u_hat[2] - 1j * kz * u_hat[1], s=s, axes=(-3, -2, -1))
    wy = np.fft.irfftn(1j * kz * u_hat[0] - 1j * kx * u_hat[2], s=s, axes=(-3, -2, -1))
    wz = np.fft.irfftn(1j * kx * u_hat[1] - 1j * ky * u_hat[0], s=s, axes=(-3, -2, -1))
    return np.stack([wx, wy, wz])


def kinetic_energy3d(u: np.ndarray) -> float:
    """Volume-mean kinetic energy ``0.5 <|u|²>``."""
    return float(0.5 * np.mean((u * u).sum(axis=0)))


def enstrophy3d(u: np.ndarray, length: float = 2.0 * np.pi) -> float:
    """Volume-mean enstrophy ``0.5 <|ω|²>``."""
    w = vorticity3d(u, length)
    return float(0.5 * np.mean((w * w).sum(axis=0)))


def random_solenoidal_velocity(
    n: int,
    rng=None,
    k_peak: float = 3.0,
    k_width: float = 1.0,
    u0: float = 1.0,
    length: float = 2.0 * np.pi,
) -> np.ndarray:
    """Band-limited random divergence-free velocity with RMS speed ``u0``."""
    from ..utils.rng import as_generator

    rng = as_generator(rng)
    kx, ky, kz, k2 = wavenumbers3d(n, length)
    k_mag = np.sqrt(k2)
    amplitude = np.exp(-0.5 * ((k_mag - k_peak) / k_width) ** 2)
    amplitude[0, 0, 0] = 0.0
    u = np.empty((3, n, n, n))
    for c in range(3):
        phases = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
        u_hat = amplitude * np.exp(1j * phases)
        if n % 2 == 0:
            u_hat[n // 2, :, :] = 0.0
            u_hat[:, n // 2, :] = 0.0
            u_hat[:, :, -1] = 0.0
        u[c] = np.fft.irfftn(u_hat, s=(n, n, n), axes=(-3, -2, -1))
    u = project_solenoidal(u, length)
    u -= u.mean(axis=(1, 2, 3), keepdims=True)
    rms = float(np.sqrt(np.mean((u * u).sum(axis=0))))
    return u * (u0 / max(rms, 1e-30))
