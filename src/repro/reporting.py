"""Digest of the benchmark results directory.

``python -m repro.reporting [benchmarks/results]`` prints a compact
paper-vs-measured summary assembled from the JSON files the benchmark
harness archives — the same numbers EXPERIMENTS.md quotes, regenerated
from whatever the latest run produced.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

__all__ = ["load_results", "summarize", "main"]


def load_results(results_dir) -> dict[str, dict]:
    """Load every ``<name>.json`` in the results directory."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    out = {}
    for path in sorted(results_dir.glob("*.json")):
        out[path.stem] = json.loads(path.read_text())
    return out


def _fmt(x) -> str:
    return f"{float(x):.3g}"


def _mean_tail(series, k=5) -> float:
    arr = np.asarray(series, dtype=float)
    return float(arr[-k:].mean())


def summarize(results: dict[str, dict]) -> list[str]:
    """One line per experiment, paper-claim oriented.

    Unknown/missing experiments are skipped silently so partial result
    directories still summarise cleanly.
    """
    lines: list[str] = []

    def add(name: str, text_fn) -> None:
        if name in results:
            try:
                lines.append(f"{name:24s} {text_fn(results[name])}")
            except (KeyError, IndexError, TypeError) as exc:
                lines.append(f"{name:24s} <malformed: {exc}>")

    add("fig1_statistics", lambda r: (
        f"std(ω) {_fmt(r['std_raw_mean'][0])} → {_fmt(r['std_raw_mean'][-1])}, "
        f"max|mean ω| {_fmt(r['max_abs_mean_vorticity'])}"
    ))
    add("fig2_separation", lambda r: (
        f"mean separation at end {_fmt(np.mean(np.asarray(r['separation'])[:, -1]))}"
    ))
    add("fig3_projection", lambda r: (
        f"correlation 1 → {_fmt(np.mean(np.asarray(r['correlation'])[:, -1]))}"
    ))
    add("fig4_lyapunov", lambda r: (
        f"Λ = {', '.join(_fmt(x) for x in r['exponents_per_tc'])} /t_c, "
        f"T_L = {_fmt(r['lyapunov_time_tc'])} t_c "
        f"(paper {r['paper_reference']['lambda_max']}, {r['paper_reference']['T_L']})"
    ))
    add("fig5_channels", lambda r: (
        "final-step rel L2 " + ", ".join(
            f"{k}:{_fmt(v['errors'][-1])}" for k, v in sorted(r["curves"].items())
        )
    ))
    add("fig6_tuning2d", lambda r: (
        "sensitivity spreads " + ", ".join(
            f"{k}:{_fmt(v['spread'])}"
            for k, v in sorted(r.items(), key=lambda kv: -kv[1]["spread"])
        )
    ))
    add("fig7_tuning3d", lambda r: (
        f"3D base t+1→t+5 {_fmt(r['base']['errors'][0])}→{_fmt(r['base']['errors'][-1])}, "
        f"channel comparator {_fmt(r['channel_comparator']['errors'][0])}→"
        f"{_fmt(r['channel_comparator']['errors'][-1])}"
    ))
    add("fig8_hybrid_stats", lambda r: (
        f"final KE pde {_fmt(r['pde']['kinetic_energy'][-1])}, "
        f"fno {_fmt(r['fno']['kinetic_energy'][-1])}, "
        f"hybrid {_fmt(r['hybrid']['kinetic_energy'][-1])}"
    ))
    add("fig9_longterm_errors", lambda r: (
        f"tail KE% fno {_fmt(_mean_tail(r['ke_err_fno']))} vs hybrid "
        f"{_fmt(_mean_tail(r['ke_err_hybrid']))}; Z% fno {_fmt(_mean_tail(r['ens_err_fno']))} "
        f"vs hybrid {_fmt(_mean_tail(r['ens_err_hybrid']))}"
    ))
    add("table1_model_costs", lambda r: (
        f"count ratios ours/paper {_fmt(min(row['ratio'] for row in r['rows']))}–"
        f"{_fmt(max(row['ratio'] for row in r['rows']))}; "
        f"epoch 3D/2D {_fmt(r['epoch_seconds_3d'] / r['epoch_seconds_2d'])}x"
    ))
    add("ablation_dealiasing", lambda r: (
        f"rel err dealiased {_fmt(r['dealiased']['error_vs_refined'])} vs aliased "
        f"{_fmt(r['aliased']['error_vs_refined'])}"
    ))
    add("ablation_entropic", lambda r: (
        f"BGK blew up at {r['bgk']['blew_up_at']}, MRT/entropic survived "
        f"(min f: {_fmt(r['mrt']['min_population'])} / {_fmt(r['entropic']['min_population'])})"
    ))
    add("ablation_loss", lambda r: (
        "enstrophy %err " + ", ".join(f"{k}:{_fmt(v['enstrophy_pct_err'])}" for k, v in r.items())
        + "; div " + ", ".join(f"{k}:{_fmt(v['rms_divergence'])}" for k, v in r.items())
    ))
    add("spectral_bias", lambda r: (
        f"fidelity k {_fmt(r['fidelity_wavenumber'][0])} → {_fmt(r['fidelity_wavenumber'][-1])} "
        f"(resolved max {r['resolved_max_k']})"
    ))
    add("super_resolution", lambda r: (
        f"rel L2 64²/32² {_fmt(np.mean(r['err_fine']))}/{_fmt(np.mean(r['err_coarse']))}, "
        f"consistency {_fmt(r['consistency'])}"
    ))
    add("cost_model", lambda r: (
        f"paper speedup {_fmt(r['paper']['speedup_vs_pde'])}x "
        f"(amortise {_fmt(r['paper']['amortisation_tcs'])} t_c); "
        f"measured {_fmt(r['measured']['speedup_vs_pde'])}x"
    ))
    add("forced_turbulence", lambda r: (
        f"KE ratio forced {_fmt(r['ke_forced_ratio'])} vs decaying {_fmt(r['ke_decay_ratio'])}; "
        f"model {_fmt(np.mean(r['model_err']))} vs persistence {_fmt(np.mean(r['persistence_err']))}"
    ))
    add("extension_3d", lambda r: (
        f"model {_fmt(r['model_err'])} vs persistence {_fmt(r['persistence_err'])} "
        f"({r['parameters']} params)"
    ))
    add("baseline_deeponet", lambda r: (
        f"FNO {_fmt(np.mean(r['err_fno']))} vs DeepONet {_fmt(np.mean(r['err_deeponet']))}"
    ))
    return lines


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_dir = argv[0] if argv else "benchmarks/results"
    try:
        results = load_results(results_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not results:
        print(f"no result files in {results_dir}", file=sys.stderr)
        return 1
    print(f"benchmark digest ({len(results)} experiments from {results_dir}):\n")
    for line in summarize(results):
        print("  " + line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
