"""Checkpoint retention: keep the last-k good artifacts under a budget.

Long trainings write epoch-numbered checkpoints; without GC a
paper-scale run (Table I: up to 23 h, checkpoint per epoch) fills the
disk and then *every* write fails.  :func:`gc_artifacts` enforces two
limits over a family of artifacts:

* ``keep_last`` — at most k *verified* checkpoints survive;
* ``budget_bytes`` — older verified checkpoints are dropped (newest
  first to survive) until the family fits the budget, but the newest
  verified one is never deleted.

Unverifiable files (checksum mismatch, no readable manifest) are
deleted first — a corrupt checkpoint is worse than no checkpoint,
because a resume might trust it.  Ordering is by name (epoch-numbered
names sort chronologically) so the policy is deterministic and
mtime-stamp-free.
"""

from __future__ import annotations

from pathlib import Path

from ..utils.artifacts import CheckpointError, manifest_path, verify_manifest

__all__ = ["gc_artifacts"]


def gc_artifacts(
    directory,
    pattern: str = "ckpt_*.npz",
    keep_last: int = 3,
    budget_bytes: int | None = None,
    dry_run: bool = False,
) -> dict:
    """Apply the retention policy to ``directory/pattern``.

    Returns ``{"kept": [names], "removed": [names], "corrupt": [names],
    "bytes_kept": n}``, all name-sorted for deterministic output.  With
    ``dry_run=True`` nothing is unlinked.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    directory = Path(directory)
    candidates = sorted(directory.glob(pattern))
    good: list[Path] = []
    corrupt: list[Path] = []
    for path in candidates:
        try:
            verify_manifest(path, required=True)
            good.append(path)
        except CheckpointError:
            corrupt.append(path)

    removed = list(corrupt)
    kept = list(good[-keep_last:])
    removed += good[: len(good) - len(kept)]
    if budget_bytes is not None:
        # Oldest kept checkpoints go first; the newest always survives.
        while len(kept) > 1 and sum(p.stat().st_size for p in kept) > budget_bytes:
            removed.append(kept.pop(0))

    if not dry_run:
        for path in removed:
            path.unlink(missing_ok=True)
            manifest_path(path).unlink(missing_ok=True)
    return {
        "kept": [p.name for p in kept],
        "removed": sorted(p.name for p in removed),
        "corrupt": sorted(p.name for p in corrupt),
        "bytes_kept": sum(p.stat().st_size for p in kept),
    }
