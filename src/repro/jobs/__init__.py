"""repro.jobs — crash-safe resumable pipelines.

Journaled stage execution (:mod:`~repro.jobs.pipeline`), append-only
run journals (:mod:`~repro.jobs.journal`), artifact lineage and legacy
adoption (:mod:`~repro.jobs.manifest`), checkpoint retention
(:mod:`~repro.jobs.retention`), and the heartbeat watchdog
(:mod:`~repro.jobs.supervisor`).  `repro run` / `repro resume` /
`repro verify` in the CLI are thin wrappers over these.
"""

from .journal import Journal, JournalError
from .manifest import adopt_legacy, artifact_record, verify_chain
from .pipeline import STAGES, Pipeline, PipelineConfig, PipelineError
from .retention import gc_artifacts
from .supervisor import (
    EXIT_DIVERGED,
    Heartbeat,
    HeartbeatReader,
    Supervisor,
    child_command,
    read_heartbeat,
)

__all__ = [
    "Journal",
    "JournalError",
    "adopt_legacy",
    "artifact_record",
    "verify_chain",
    "STAGES",
    "Pipeline",
    "PipelineConfig",
    "PipelineError",
    "gc_artifacts",
    "EXIT_DIVERGED",
    "Heartbeat",
    "HeartbeatReader",
    "Supervisor",
    "child_command",
    "read_heartbeat",
]
