"""``repro run`` / ``repro resume`` / ``repro verify`` — pipeline CLI.

``run`` starts a fresh journaled pipeline in ``--workdir``; ``resume``
continues one from its journal and durable artifacts (no flags needed —
the config travels in ``pipeline.json``); ``verify`` checks the
checksum-manifest chain of artifacts (or of everything a run produced).
``--supervise`` wraps either entry point in the watchdog: stages run in
a child process emitting heartbeats, and crashes/stalls restart the
child with bounded, seeded backoff.

Exit codes: 0 success, 1 failure, 2 usage/state error, 13 the child
escalated :class:`~repro.faults.policy.RolloutDiverged` (the supervisor
does not retry those).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = [
    "add_run_arguments", "add_resume_arguments", "add_verify_arguments",
    "run_run", "run_resume", "run_verify",
]


def _add_supervise_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--supervise", action="store_true",
                        help="run stages in a watchdogged child process with "
                             "heartbeats and bounded restarts")
    parser.add_argument("--max-restarts", type=int, default=3,
                        help="restart budget under --supervise")
    parser.add_argument("--stall-timeout", type=float, default=30.0,
                        help="seconds without a heartbeat before the child is "
                             "killed and restarted")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)


def add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workdir", required=True,
                        help="run directory (journal, config, artifacts)")
    g = parser.add_argument_group("data generation")
    g.add_argument("--grid", type=int, default=16)
    g.add_argument("--reynolds", type=float, default=400.0)
    g.add_argument("--samples", type=int, default=4)
    g.add_argument("--warmup", type=float, default=0.1)
    g.add_argument("--duration", type=float, default=0.2)
    g.add_argument("--interval", type=float, default=0.02)
    g.add_argument("--solver", choices=["lbm", "spectral", "fd"], default="spectral")
    g.add_argument("--ic", choices=["uniform", "band"], default="band")
    g.add_argument("--shard-size", type=int, default=2, dest="shard_size",
                   help="samples per shard")
    t = parser.add_argument_group("training")
    t.add_argument("--n-in", type=int, default=2)
    t.add_argument("--n-out", type=int, default=1)
    t.add_argument("--modes", type=int, default=4)
    t.add_argument("--width", type=int, default=8)
    t.add_argument("--layers", type=int, default=2)
    t.add_argument("--epochs", type=int, default=3)
    t.add_argument("--batch-size", type=int, default=4)
    t.add_argument("--lr", type=float, default=1e-3)
    t.add_argument("--loss", choices=["l2", "mse", "h1", "divergence"], default="l2")
    t.add_argument("--test-fraction", type=float, default=0.25)
    r = parser.add_argument_group("evaluation + housekeeping")
    r.add_argument("--rollout-mode", choices=["hybrid", "fno"], default="hybrid")
    r.add_argument("--cycles", type=int, default=1)
    r.add_argument("--keep-checkpoints", type=int, default=3,
                   help="retention: newest verified checkpoints kept")
    r.add_argument("--checkpoint-budget-mb", type=float, default=0.0,
                   help="retention: total checkpoint disk budget (0 = off)")
    parser.add_argument("--seed", type=int, default=0)
    _add_supervise_arguments(parser)


def add_resume_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workdir", required=True,
                        help="run directory started by `repro run`")
    _add_supervise_arguments(parser)


def add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="artifacts to verify (checksum + lineage chain)")
    parser.add_argument("--workdir", default=None,
                        help="verify every artifact a pipeline run produced")


def _config_from_args(args):
    from .pipeline import PipelineConfig

    return PipelineConfig(
        grid=args.grid, reynolds=args.reynolds, samples=args.samples,
        warmup=args.warmup, duration=args.duration, interval=args.interval,
        solver=args.solver, ic=args.ic, samples_per_shard=args.shard_size,
        n_in=args.n_in, n_out=args.n_out, modes=args.modes, width=args.width,
        layers=args.layers, epochs=args.epochs, batch_size=args.batch_size,
        lr=args.lr, loss=args.loss, test_fraction=args.test_fraction,
        rollout_mode=args.rollout_mode, cycles=args.cycles,
        keep_checkpoints=args.keep_checkpoints,
        checkpoint_budget_mb=args.checkpoint_budget_mb, seed=args.seed,
    )


def _print_summary(summary: dict) -> None:
    for cell in summary["stages"]:
        arts = ", ".join(Path(a).name for a in cell["artifacts"])
        print(f"stage {cell['stage']:<8} {cell['status']:<9} {arts}")


def _execute(workdir: Path, config, resume: bool) -> int:
    """Run the pipeline in-process (the --child / unsupervised path)."""
    from ..faults.policy import RolloutDiverged
    from ..utils.artifacts import CheckpointError
    from .pipeline import Pipeline, PipelineError
    from .supervisor import EXIT_DIVERGED, Heartbeat

    try:
        pipeline = Pipeline(workdir, config)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    heartbeat = Heartbeat(workdir / "heartbeat.json")
    heartbeat.start()
    try:
        summary = pipeline.run(resume=resume)
    except RolloutDiverged as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_DIVERGED
    except (PipelineError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        heartbeat.stop()
    _print_summary(summary)
    return 0


def _supervised(workdir: Path, args, resume: bool) -> int:
    from ..faults.policy import RetryPolicy
    from .journal import Journal
    from .supervisor import Supervisor, child_command

    def narrate(kind, **info):
        if kind == "launch":
            print(f"supervisor: launching attempt {info['attempt'] + 1}",
                  file=sys.stderr)
        else:
            print(f"supervisor: child {kind} (rc={info.get('returncode')})",
                  file=sys.stderr)

    supervisor = Supervisor(
        child_command(workdir, resume=True),
        heartbeat_path=workdir / "heartbeat.json",
        retry=RetryPolicy(attempts=args.max_restarts + 1, backoff=0.2,
                          retry_on=()),
        stall_timeout=args.stall_timeout,
        on_event=narrate,
    )
    report = supervisor.run()
    if report["escalated"]:
        failure = Journal(workdir / "journal.jsonl").last_failure() or {}
        print(f"supervisor: escalating {report['escalated']} "
              f"({failure.get('detail', 'no journal detail')})", file=sys.stderr)
        return 13
    if not report["ok"]:
        print(f"supervisor: giving up after {len(report['attempts'])} attempt(s)",
              file=sys.stderr)
        return 1
    print(f"supervisor: pipeline complete after {report['restarts']} restart(s)",
          file=sys.stderr)
    return 0


def run_run(args) -> int:
    from .pipeline import Pipeline, PipelineError

    workdir = Path(args.workdir)
    config = _config_from_args(args)
    if args.supervise:
        try:
            Pipeline(workdir, config)  # persist/validate config for the child
        except PipelineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _supervised(workdir, args, resume=False)
    return _execute(workdir, config, resume=args.child)


def run_resume(args) -> int:
    workdir = Path(args.workdir)
    if args.supervise:
        return _supervised(workdir, args, resume=True)
    return _execute(workdir, config=None, resume=True)


def run_verify(args) -> int:
    from ..utils.artifacts import CheckpointError
    from .manifest import verify_chain
    from .pipeline import Pipeline, PipelineError

    paths = [Path(p) for p in args.paths]
    if args.workdir:
        try:
            paths.extend(Pipeline(Path(args.workdir)).artifact_paths())
        except PipelineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if not paths:
        print("error: nothing to verify (give paths or --workdir)", file=sys.stderr)
        return 2
    failed = 0
    for path in paths:
        try:
            chain = verify_chain(path)
        except CheckpointError as exc:
            print(f"FAIL {path}: {exc}")
            failed += 1
        else:
            print(f"ok   {path} ({len(chain)} artifact(s) in chain)")
    return 1 if failed else 0
