"""Append-only JSONL journal of pipeline progress.

The journal is the pipeline's only durable state: every stage
transition is one JSON object on one line, appended with a single
``os.write`` to an ``O_APPEND`` descriptor and fsynced before the
caller proceeds.  A process crash therefore leaves at worst one torn
*final* line — which :meth:`Journal.load` drops, because an append that
never completed is by definition a step that never completed.  Torn or
garbage lines anywhere *before* the tail still raise: that is
corruption, not interruption.

Records are dicts with a ``type`` field; the pipeline uses::

    {"type": "run",  "status": "created", "config_hash": ..., "stages": [...]}
    {"type": "step", "stage": "train", "status": "started", "attempt": 1}
    {"type": "step", "stage": "train", "status": "done",
     "config_hash": ..., "artifacts": [{"path": ..., "sha256": ...}]}
    {"type": "step", "stage": "train", "status": "failed", "error": "..."}

No timestamps are recorded — replays compare journals across runs, and
the journal only needs *order*, which append-only gives for free.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JournalError", "Journal"]


class JournalError(ValueError):
    """The journal file is corrupt (torn/garbage line before the tail)."""


class Journal:
    """Append-only JSONL journal with crash-atomic appends."""

    def __init__(self, path):
        self.path = Path(path)
        self._fd: int | None = None

    # -- writing -------------------------------------------------------
    def append(self, record: dict) -> dict:
        """Durably append one record (single write + fsync)."""
        if "type" not in record:
            raise ValueError("journal records need a 'type' field")
        payload = (json.dumps(record, sort_keys=True) + "\n").encode()
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(self._fd, payload)
        os.fsync(self._fd)
        return record

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> list[dict]:
        """Parse every complete record; a torn final line is dropped.

        Raises :class:`JournalError` for malformed lines that are *not*
        the tail — those cannot be explained by an interrupted append.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        lines = raw.decode("utf-8", errors="replace").splitlines()
        records: list[dict] = []
        last = len(lines) - 1
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict) or "type" not in obj:
                    raise ValueError("not a journal record")
            except ValueError as exc:
                if i == last:
                    break  # torn tail from a crashed append — ignore
                raise JournalError(
                    f"{self.path}:{i + 1}: corrupt journal line ({exc})"
                ) from None
            records.append(obj)
        return records

    def completed_steps(self) -> dict[str, dict]:
        """Latest ``status == "done"`` record per stage.

        A later ``started``/``failed`` record for the same stage
        invalidates the earlier ``done`` — re-running a stage makes its
        old artifacts unreliable until it finishes again.
        """
        done: dict[str, dict] = {}
        for record in self.load():
            if record.get("type") != "step":
                continue
            stage = record.get("stage")
            if record.get("status") == "done":
                done[stage] = record
            elif stage in done:
                del done[stage]
        return done

    def last_failure(self) -> dict | None:
        """The most recent ``failed`` step record, if any."""
        failure = None
        for record in self.load():
            if record.get("type") == "step" and record.get("status") == "failed":
                failure = record
        return failure
