"""Journaled pipeline state machine: data-gen → train → eval/rollout.

A :class:`Pipeline` owns one *run directory*: the serialized
:class:`PipelineConfig` (``pipeline.json``), the append-only
:class:`~repro.jobs.journal.Journal` (``journal.jsonl``), and every
artifact the stages produce (data shards, epoch checkpoints, the final
model, roll-out diagnostics) — all written through
:mod:`repro.utils.artifacts`, so each carries a checksum manifest with
lineage back to the shards it came from.

Stages are idempotent: ``run(resume=True)`` replays a stage from its
durable artifacts when the journal says it finished *and* every
artifact still checksum-verifies; otherwise the stage re-executes, and
each stage knows how to pick up its own partial work (data-gen skips
already-valid shards, training restarts from the newest valid epoch
checkpoint with the shuffle stream replayed).  The chaos harness proves
the contract: kill the run anywhere, resume, and the final weights,
optimizer moments and loss history are bitwise-identical to an
uninterrupted run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from .. import obs
from ..utils.artifacts import (
    CheckpointError,
    atomic_write_json,
    atomic_write_npz,
    stable_hash,
    verify_manifest,
)
from .journal import Journal
from .manifest import artifact_record
from .retention import gc_artifacts

__all__ = ["PipelineConfig", "PipelineError", "Pipeline", "STAGES"]

STAGES = ("data", "train", "rollout")


class PipelineError(RuntimeError):
    """The pipeline cannot run as asked (bad state, failed stage)."""


@dataclass(frozen=True)
class PipelineConfig:
    """Everything one end-to-end run needs, in one serialisable place.

    Defaults are a minutes-scale smoke pipeline; the paper-scale run is
    flag values away (``grid=256, reynolds=7500, samples=5000,
    epochs=500``), exactly like the standalone CLI subcommands.
    """

    # data generation (see repro.data.DataGenConfig)
    grid: int = 16
    reynolds: float = 400.0
    samples: int = 4
    warmup: float = 0.1
    duration: float = 0.2
    interval: float = 0.02
    solver: str = "spectral"
    ic: str = "band"
    samples_per_shard: int = 2
    # model + training
    n_in: int = 2
    n_out: int = 1
    modes: int = 4
    width: int = 8
    layers: int = 2
    epochs: int = 3
    batch_size: int = 4
    lr: float = 1e-3
    scheduler_step: int = 10
    scheduler_gamma: float = 0.5
    loss: str = "l2"
    test_fraction: float = 0.25
    # evaluation roll-out
    rollout_mode: str = "hybrid"  # "hybrid" | "fno"
    cycles: int = 1
    # housekeeping
    keep_checkpoints: int = 3
    checkpoint_budget_mb: float = 0.0  # 0 disables the byte budget
    seed: int = 0

    def __post_init__(self):
        if self.rollout_mode not in ("hybrid", "fno"):
            raise ValueError(f"unknown rollout mode {self.rollout_mode!r}")
        if self.samples < 2:
            raise ValueError("need at least 2 samples (train/test split)")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineConfig":
        return cls(**payload)

    @property
    def config_hash(self) -> str:
        return stable_hash(self.to_dict())

    # -- sub-config views ------------------------------------------------
    def datagen_config(self):
        from ..data import DataGenConfig

        return DataGenConfig(
            n=self.grid, reynolds=self.reynolds, n_samples=self.samples,
            warmup=self.warmup, duration=self.duration,
            sample_interval=self.interval, solver=self.solver, ic=self.ic,
            seed=self.seed,
        )

    def model_config(self):
        from ..core import ChannelFNOConfig

        return ChannelFNOConfig(
            n_in=self.n_in, n_out=self.n_out, n_fields=2,
            modes1=self.modes, modes2=self.modes, width=self.width,
            n_layers=self.layers,
        )

    def training_config(self):
        from ..core import TrainingConfig

        return TrainingConfig(
            epochs=self.epochs, batch_size=self.batch_size,
            learning_rate=self.lr, scheduler_step=self.scheduler_step,
            scheduler_gamma=self.scheduler_gamma, loss=self.loss,
            seed=self.seed,
        )


class Pipeline:
    """One supervised, resumable run rooted at ``workdir``.

    Construct with a :class:`PipelineConfig` to start (the config is
    persisted to ``pipeline.json``), or with ``config=None`` to reload
    an existing run directory — ``repro resume`` never needs the
    original flags.
    """

    def __init__(self, workdir, config: PipelineConfig | None = None):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config_path = self.workdir / "pipeline.json"
        if config is None:
            if not self.config_path.exists():
                raise PipelineError(
                    f"{self.workdir}: no pipeline.json — not a pipeline run "
                    f"directory (start one with `repro run`)"
                )
            import json

            config = PipelineConfig.from_dict(
                json.loads(self.config_path.read_text(encoding="utf-8"))
            )
        elif self.config_path.exists():
            existing = Pipeline(self.workdir).config
            if existing.config_hash != config.config_hash:
                raise PipelineError(
                    f"{self.workdir}: pipeline.json holds a different config "
                    f"(hash {existing.config_hash} != {config.config_hash}); "
                    f"use a fresh --workdir for a different run"
                )
        self.config = config
        if not self.config_path.exists():
            # Persist immediately: `repro resume` (and supervised child
            # processes) must be able to rebuild the config from disk.
            atomic_write_json(self.config_path, config.to_dict())
        self.journal = Journal(self.workdir / "journal.jsonl")
        self.data_dir = self.workdir / "data"
        self.checkpoint_dir = self.workdir / "checkpoints"
        self.model_path = self.workdir / "model.npz"
        self.rollout_path = self.workdir / "rollout.npz"

    # ------------------------------------------------------------------
    def run(self, resume: bool = False, stages=None) -> dict:
        """Execute (or replay) the stage sequence; returns a summary.

        ``resume=False`` on a workdir whose journal already has step
        records is refused — restarting from scratch over existing
        artifacts is exactly the mistake the journal exists to prevent.
        """
        records = self.journal.load()
        has_steps = any(r.get("type") == "step" for r in records)
        if has_steps and not resume:
            raise PipelineError(
                f"{self.workdir}: journal already has step records; "
                f"use `repro resume` (or a fresh --workdir)"
            )
        if not records:
            self.journal.append({
                "type": "run", "status": "created",
                "config_hash": self.config.config_hash, "stages": list(STAGES),
            })
        wanted = list(stages) if stages else list(STAGES)
        unknown = [s for s in wanted if s not in STAGES]
        if unknown:
            raise PipelineError(f"unknown stage(s) {unknown} (known: {list(STAGES)})")
        completed = self.journal.completed_steps() if resume else {}

        summary = {"workdir": str(self.workdir), "stages": []}
        for stage in STAGES:
            if stage not in wanted:
                continue
            replayed = self._replayable(stage, completed.get(stage))
            if replayed is not None:
                summary["stages"].append(
                    {"stage": stage, "status": "replayed", "artifacts": replayed}
                )
                continue
            self.journal.append({"type": "step", "stage": stage, "status": "started"})
            try:
                with obs.span("pipeline.stage", stage=stage):
                    artifacts = getattr(self, f"_stage_{stage}")()
            except BaseException as exc:
                # Journal the failure before propagating so the
                # supervisor (and the next resume) can see *why*.
                self.journal.append({
                    "type": "step", "stage": stage, "status": "failed",
                    "error": type(exc).__name__, "detail": str(exc)[:500],
                })
                raise
            self.journal.append({
                "type": "step", "stage": stage, "status": "done",
                "config_hash": self.config.config_hash,
                "artifacts": [artifact_record(p) for p in artifacts],
            })
            summary["stages"].append({
                "stage": stage, "status": "ran",
                "artifacts": [str(p) for p in artifacts],
            })
        return summary

    def _replayable(self, stage: str, done: dict | None) -> list | None:
        """Artifact paths if ``stage`` can be replayed from disk, else None."""
        if done is None or done.get("config_hash") != self.config.config_hash:
            return None
        paths = []
        for rec in done.get("artifacts", ()):  # every artifact must verify
            path = self.workdir / rec["path"] if stage != "data" \
                else self.data_dir / rec["path"]
            try:
                manifest = verify_manifest(path, required=True)
            except CheckpointError:
                return None
            if manifest["sha256"] != rec["sha256"]:
                return None
            paths.append(str(path))
        return paths

    # -- stages ---------------------------------------------------------
    def _stage_data(self) -> list[Path]:
        from ..data.sharded import generate_sharded_dataset

        return generate_sharded_dataset(
            self.config.datagen_config(), self.data_dir,
            samples_per_shard=self.config.samples_per_shard, resume=True,
        )

    def _load_all_samples(self):
        from ..data import load_samples

        shard_paths = sorted(self.data_dir.glob("shard_*.npz"))
        if not shard_paths:
            raise PipelineError(f"{self.data_dir}: no shards (data stage missing?)")
        samples = []
        for path in shard_paths:
            verify_manifest(path, required=True)
            shard_samples, _ = load_samples(path)
            samples.extend(shard_samples)
        samples.sort(key=lambda s: s.sample_id)
        return samples, shard_paths

    def _stage_train(self) -> list[Path]:
        from ..core import Trainer, build_fno2d_channels, save_model
        from ..data import (
            FieldNormalizer,
            make_channel_pairs,
            stack_fields,
            train_test_split_samples,
        )

        cfg = self.config
        samples, shard_paths = self._load_all_samples()
        n_test = max(1, int(round(cfg.test_fraction * len(samples))))
        if n_test >= len(samples):
            raise PipelineError("dataset too small for the requested test fraction")
        train_s, test_s = train_test_split_samples(
            samples, n_test=n_test, rng=np.random.default_rng(cfg.seed)
        )
        X, Y = make_channel_pairs(stack_fields(train_s, "velocity"), cfg.n_in, cfg.n_out)
        Xt, Yt = make_channel_pairs(stack_fields(test_s, "velocity"), cfg.n_in, cfg.n_out)
        normalizer = FieldNormalizer(n_fields=2).fit(X)

        model_config = cfg.model_config()
        model = build_fno2d_channels(model_config, rng=np.random.default_rng(cfg.seed))
        trainer = Trainer(model, cfg.training_config())

        # Restart from the newest *valid* epoch checkpoint; a torn or
        # mismatched one is skipped in favour of the previous epoch.
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        last_ckpt = None
        for ckpt in sorted(self.checkpoint_dir.glob("ckpt_*.npz"), reverse=True):
            try:
                verify_manifest(ckpt, required=True)
                trainer.load_checkpoint(ckpt)
                last_ckpt = ckpt
                break
            except CheckpointError:
                continue
        trainer.fit(
            normalizer.encode(X), normalizer.encode(Y),
            normalizer.encode(Xt), normalizer.encode(Yt),
            checkpoint_path=self.checkpoint_dir / "ckpt_{epoch:05d}.npz",
            checkpoint_every=1,
        )
        final_ckpt = self.checkpoint_dir / f"ckpt_{trainer.epochs_completed:05d}.npz"
        # Lineage paths are relative to the run root (model.npz's home),
        # so verify_chain can walk them from the model's directory.
        parents = [artifact_record(p, relative_to=self.workdir) for p in shard_paths]
        if final_ckpt.exists():
            parents.append(artifact_record(final_ckpt, relative_to=self.workdir))
        elif last_ckpt is not None:  # resumed past the last epoch: no new writes
            parents.append(artifact_record(last_ckpt, relative_to=self.workdir))
        save_model(
            self.model_path, model, model_config, normalizer,
            manifest={"seed": cfg.seed, "parents": parents,
                      "extra": {"epochs": trainer.epochs_completed,
                                "train_loss": trainer.history.train_loss}},
        )
        budget = int(cfg.checkpoint_budget_mb * 2**20) or None
        gc_artifacts(self.checkpoint_dir, keep_last=cfg.keep_checkpoints,
                     budget_bytes=budget)
        return [self.model_path]

    def _stage_rollout(self) -> list[Path]:
        from ..core import HybridConfig, HybridFNOPDE, load_model, run_pure_fno
        from ..faults.policy import DivergenceGuard
        from ..ns import FDNSSolver2D

        cfg = self.config
        model, model_config, normalizer = load_model(self.model_path)
        samples, shard_paths = self._load_all_samples()
        sample = samples[0]
        window = sample.velocity[: model_config.n_in]
        dt = float(sample.times[1] - sample.times[0])
        nu = 2.0 * np.pi / cfg.reynolds

        if cfg.rollout_mode == "hybrid":
            hycfg = HybridConfig(
                n_in=model_config.n_in, n_out=model_config.n_out, n_fields=2,
                sample_interval=dt, n_cycles=cfg.cycles,
            )
            record = HybridFNOPDE(
                model, FDNSSolver2D(sample.grid_size, nu), hycfg,
                normalizer=normalizer,
            ).run(window)
        else:
            n_snap = cfg.cycles * (model_config.n_in + model_config.n_out)
            record = run_pure_fno(
                model, window, n_snapshots=n_snap, n_fields=2,
                normalizer=normalizer, sample_interval=dt,
                guard=DivergenceGuard(),
            )
        d = record.diagnostics()
        atomic_write_npz(
            self.rollout_path,
            {
                "times": np.asarray(d["times"]),
                "kinetic_energy": np.asarray(d["kinetic_energy"]),
                "enstrophy": np.asarray(d["enstrophy"]),
                "rms_divergence": np.asarray(d["rms_divergence"]),
            },
            site="checkpoint.write",
            manifest={"kind": "rollout", "seed": cfg.seed,
                      "parents": [
                          artifact_record(self.model_path, relative_to=self.workdir),
                          artifact_record(shard_paths[0], relative_to=self.workdir),
                      ],
                      "extra": {"mode": cfg.rollout_mode}},
        )
        return [self.rollout_path]

    # ------------------------------------------------------------------
    def artifact_paths(self) -> list[Path]:
        """Every artifact the journal's completed steps claim, resolved."""
        paths: list[Path] = []
        for stage, done in sorted(self.journal.completed_steps().items()):
            base = self.data_dir if stage == "data" else self.workdir
            paths.extend(base / rec["path"] for rec in done.get("artifacts", ()))
        return paths
