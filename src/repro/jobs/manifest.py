"""Artifact lineage: records, chain verification, legacy adoption.

:mod:`repro.utils.artifacts` owns the low-level manifest sidecars
(sha256 + provenance per file); this module is the graph view on top.
Each manifest may carry ``parents`` — ``{"path", "sha256"}`` records of
the artifacts it was derived from (a model checkpoint's parents are its
training shards) — and :func:`verify_chain` walks that DAG verifying
every node, so "this model is exactly the model trained on exactly this
data" becomes one call.
"""

from __future__ import annotations

from pathlib import Path

from ..utils.artifacts import (
    CheckpointError,
    guarded_npz_load,
    load_manifest,
    manifest_path,
    sha256_file,
    verify_manifest,
    write_manifest,
)

__all__ = ["artifact_record", "verify_chain", "adopt_legacy"]


def artifact_record(path, *, checksum: str | None = None, relative_to=None) -> dict:
    """``{"path", "sha256"}`` lineage record for ``path``.

    The recorded path is the file *name* — or, with ``relative_to``, the
    path relative to that directory (e.g. ``data/shard_00000.npz`` for a
    shard referenced from the run root).  Either way the record is
    relocatable: lineage survives moving the whole run directory.  The
    checksum comes from the manifest sidecar when present, so building a
    lineage record does not re-hash large artifacts.
    """
    path = Path(path)
    if checksum is None:
        try:
            checksum = load_manifest(path)["sha256"]
        except CheckpointError:
            checksum = sha256_file(path)
    name = (
        path.relative_to(relative_to).as_posix() if relative_to is not None
        else path.name
    )
    return {"path": name, "sha256": checksum}


def verify_chain(path, *, _seen: set | None = None) -> list[Path]:
    """Verify ``path`` and, recursively, every parent in its lineage.

    Parents are resolved relative to the artifact's directory.  Returns
    the verified paths (depth-first, the artifact itself last); raises
    :class:`CheckpointError` at the first broken link — missing parent,
    missing manifest, or checksum mismatch anywhere in the chain.
    """
    path = Path(path)
    seen = _seen if _seen is not None else set()
    key = path.resolve()
    if key in seen:
        return []
    seen.add(key)
    manifest = verify_manifest(path, required=True)
    verified: list[Path] = []
    for parent in manifest.get("parents", ()):  # depth-first over lineage
        parent_path = path.parent / parent["path"]
        verified += verify_chain(parent_path, _seen=seen)
        recorded = load_manifest(parent_path)["sha256"]
        if recorded != parent["sha256"]:
            raise CheckpointError(
                f"{path}: lineage mismatch — parent {parent['path']} now has "
                f"sha256 {recorded[:12]}…, expected {parent['sha256'][:12]}… "
                f"(the parent was rewritten after this artifact was derived)"
            )
    verified.append(path)
    return verified


def adopt_legacy(path, *, kind: str = "artifact", **meta) -> dict:
    """Give a pre-manifest npz artifact an integrity manifest.

    Migration path for checkpoints/shards written before the manifest
    layer existed: the file is first proven to be a *readable* npz (a
    corrupt legacy file must not be blessed with a valid checksum), then
    a sidecar is written hashing its current bytes.  Returns the new
    manifest.  No-op when a sidecar already exists.
    """
    path = Path(path)
    if manifest_path(path).exists():
        return load_manifest(path)
    with guarded_npz_load(path, kind=kind) as data:
        for key in data.files:  # force-decompress every member
            data[key]
    write_manifest(path, kind=kind, **meta)
    return load_manifest(path)
