"""Watchdog supervisor: child stages, heartbeat files, bounded restarts.

The pipeline stages run in a child process; the only thing the parent
trusts is the filesystem.  The child emits a heartbeat file (atomic
JSON, monotonically increasing ``seq``) from a daemon thread; the
supervisor polls it and arms a fresh
:class:`~repro.faults.policy.Deadline` on every beat.  Three failure
modes, three behaviours:

* **crash** (child exits non-zero or is killed) — restart with the
  bounded, seeded-backoff schedule of a
  :class:`~repro.faults.policy.RetryPolicy`; the journaled pipeline
  resumes from its last durable artifact;
* **stall** (heartbeat deadline missed) — SIGKILL the child, then the
  same restart path; a hung NFS mount or a livelocked solver looks
  exactly like a crash from here;
* **divergence** (child exits :data:`EXIT_DIVERGED`, the code
  ``repro run`` maps :class:`~repro.faults.policy.RolloutDiverged` to)
  — escalate, do not restart: re-running a surrogate that left the
  attractor wastes the whole retry budget on the same wrong answer.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from ..faults.policy import Deadline, RetryPolicy
from ..utils.artifacts import atomic_write_json

__all__ = ["EXIT_DIVERGED", "Heartbeat", "read_heartbeat", "HeartbeatReader",
           "Supervisor", "child_command"]

# Exit code `repro run --child` uses for RolloutDiverged: the supervisor
# must be able to tell "crashed, retry" from "diverged, escalate"
# without parsing stderr.
EXIT_DIVERGED = 13


class Heartbeat:
    """Daemon-thread heartbeat writer for a pipeline child process.

    Each beat atomically rewrites ``path`` with ``{"pid", "seq",
    "interval"}``.  ``seq`` increments per beat, so a *restarted* child
    that reuses the path still advances the supervisor's liveness view
    (the pid changes, the seq restarts — either difference counts as a
    beat).
    """

    def __init__(self, path, interval: float = 0.25):
        self.path = Path(path)
        self.interval = float(interval)
        self._seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self) -> None:
        # start() beats from the caller's thread while _loop beats from
        # the daemon thread; the lock keeps seq increments exact and the
        # file contents monotonic.
        with self._lock:
            self._seq += 1
            atomic_write_json(
                self.path, {"pid": os.getpid(), "seq": self._seq, "interval": self.interval}
            )

    def start(self) -> "Heartbeat":
        self.beat()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-heartbeat")
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def read_heartbeat(path, last: dict | None = None) -> dict | None:
    """Parse a heartbeat file; ``last`` when unreadable, torn, or absent.

    The writer publishes beats via ``os.replace``, but a reader racing
    the replace (or a beat written by a non-atomic writer over NFS) can
    observe a partial/empty JSON document.  A torn read must not look
    like a *missed* beat — a supervisor that treats it as silence will
    SIGKILL a perfectly live child — so the caller passes the last
    successfully parsed value and gets it back instead of ``None``.
    """
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError, OSError):
        return last


class HeartbeatReader:
    """Stateful :func:`read_heartbeat` wrapper holding the last-good beat.

    ``read()`` returns the freshest parseable beat, falling back to the
    previous good value across torn or partial reads; ``age_of(beat)``
    style staleness logic stays with the caller, which also keeps the
    injectable clock it measures with.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.last: dict | None = None

    def read(self) -> dict | None:
        self.last = read_heartbeat(self.path, last=self.last)
        return self.last


class Supervisor:
    """Run a child command under crash/stall supervision.

    Parameters
    ----------
    command:
        argv of the child (typically ``[sys.executable, "-m",
        "repro.cli", "resume", "--workdir", ..., "--child"]``).
    heartbeat_path:
        File the child beats on; staleness beyond ``stall_timeout``
        after the last observed beat means the child is hung.
    retry:
        Bounds the restarts: ``retry.attempts`` total launches,
        ``retry.delays()`` slept between them (seeded, deterministic).
    stall_timeout:
        Seconds without a new beat before the child is declared stalled
        and killed.  ``None`` disables stall detection.
    """

    def __init__(
        self,
        command: list[str],
        *,
        heartbeat_path=None,
        retry: RetryPolicy | None = None,
        stall_timeout: float | None = 10.0,
        poll_interval: float = 0.05,
        env: dict | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        on_event=None,
    ):
        self.command = list(command)
        self.heartbeat_path = Path(heartbeat_path) if heartbeat_path else None
        self.retry = retry or RetryPolicy(attempts=4, backoff=0.1, retry_on=())
        self.stall_timeout = stall_timeout
        self.poll_interval = float(poll_interval)
        self.env = env
        self._clock = clock
        self._sleep = sleep
        self._on_event = on_event or (lambda kind, **info: None)

    # ------------------------------------------------------------------
    def _watch_child(self, proc: subprocess.Popen) -> tuple[int, str]:
        """Wait for exit or stall; returns ``(returncode, outcome)``."""
        last_beat = read_heartbeat(self.heartbeat_path) if self.heartbeat_path else None
        deadline = (
            Deadline(self.stall_timeout, clock=self._clock)
            if self.stall_timeout is not None and self.heartbeat_path is not None
            else None
        )
        while True:
            rc = proc.poll()
            if rc is not None:
                if rc == 0:
                    return rc, "success"
                if rc == EXIT_DIVERGED:
                    return rc, "diverged"
                return rc, "crashed"
            if deadline is not None:
                # last-good fallback: a read torn by the writer's
                # os.replace must not register as a missed beat.
                beat = read_heartbeat(self.heartbeat_path, last=last_beat)
                if beat != last_beat and beat is not None:
                    last_beat = beat
                    deadline = Deadline(self.stall_timeout, clock=self._clock)
                elif deadline.expired():
                    proc.kill()
                    proc.wait()
                    return proc.returncode, "stalled"
            self._sleep(self.poll_interval)

    def run(self) -> dict:
        """Launch/relaunch the child until success, escalation, or the
        retry budget runs out.  Returns a report dict (``ok`` plus the
        per-attempt outcomes); never raises for child failures."""
        delays = self.retry.delays()
        attempts: list[dict] = []
        ok = False
        escalated = None
        for attempt in range(self.retry.attempts):
            self._on_event("launch", attempt=attempt, command=self.command)
            proc = subprocess.Popen(self.command, env=self.env)
            rc, outcome = self._watch_child(proc)
            attempts.append({"attempt": attempt, "returncode": rc, "outcome": outcome})
            self._on_event(outcome, attempt=attempt, returncode=rc)
            if outcome == "success":
                ok = True
                break
            if outcome == "diverged":
                escalated = "RolloutDiverged"
                break
            if attempt < self.retry.attempts - 1:
                self._sleep(delays[attempt])
        return {
            "ok": ok,
            "attempts": attempts,
            "restarts": max(len(attempts) - 1, 0),
            "escalated": escalated,
        }


def child_command(workdir, *, resume: bool = True) -> list[str]:
    """argv for a supervised pipeline child resuming ``workdir``."""
    sub = "resume" if resume else "run"
    return [sys.executable, "-m", "repro.cli", sub,
            "--workdir", str(workdir), "--child"]
