"""Hot-path profiling hooks — zero cost unless explicitly enabled.

Three hook points, chosen so the disabled state leaves the hot paths
untouched:

* **Tensor op dispatch** — ``Tensor.from_op`` (the funnel every autodiff
  primitive's output passes through) is monkey-patched to count ops and
  output elements, exactly like :func:`repro.checks.dtype_sanitizer`
  patches it for dtype checks.  When profiling is off the original
  method is in place, so the per-op cost is literally zero.
* **FFT calls** — :mod:`repro.tensor.fft_ops` resolves ``_fft.rfftn`` /
  ``_fft.irfftn`` at call time, so swapping the module's ``_fft``
  attribute for a counting proxy intercepts every spectral transform.
* **Solver steps** — :class:`repro.ns.NSSolverBase` and
  :class:`repro.lbm.LBMSolver2D` check the module-level
  :data:`PROFILING` flag once per ``advance()``/``step()`` call (not per
  grid point) and report step counts + wall time here when it is set.

Enabling is reference-counted so nested ``profile()`` contexts compose;
counts land in the registry returned by :func:`repro.obs.metrics_registry`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["PROFILING", "profile", "enable_profiling", "disable_profiling",
           "record_solver_advance"]

# Read by the solver step loops; written only under _lock below.
PROFILING = False

_lock = threading.Lock()
_depth = 0
_original_from_op = None
_original_fft = None


def _registry():
    from . import metrics_registry

    return metrics_registry()


class _CountingFFT:
    """Proxy over ``scipy.fft`` counting calls per transform name."""

    def __init__(self, wrapped):
        self._wrapped = wrapped

    def __getattr__(self, name):
        fn = getattr(self._wrapped, name)
        if not callable(fn):
            return fn
        counter = _registry().counter("fft_calls_total", labels={"fn": name})
        timer = _registry().histogram("fft_seconds")

        def counted(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                counter.inc()
                timer.observe(time.perf_counter() - start)

        # Cache on the instance so the closure is built once per name.
        setattr(self, name, counted)
        return counted


def _install() -> None:
    global _depth, _original_from_op, _original_fft, PROFILING
    from ..tensor import Tensor
    from ..tensor import fft_ops

    with _lock:
        _depth += 1
        if _depth > 1:
            return
        registry = _registry()
        op_counter = registry.counter("tensor_ops_total")
        elem_counter = registry.counter("tensor_op_elements_total")
        _original_from_op = Tensor.from_op

        original = _original_from_op

        def profiled_from_op(data, parents, backward):
            op_counter.inc()
            elem_counter.inc(data.size)
            return original(data, parents, backward)

        Tensor.from_op = staticmethod(profiled_from_op)
        _original_fft = fft_ops._fft
        fft_ops._fft = _CountingFFT(_original_fft)
        PROFILING = True


def _uninstall() -> None:
    global _depth, _original_from_op, _original_fft, PROFILING
    from ..tensor import Tensor
    from ..tensor import fft_ops

    with _lock:
        _depth -= 1
        if _depth > 0:
            return
        Tensor.from_op = staticmethod(_original_from_op)
        fft_ops._fft = _original_fft
        _original_from_op = None
        _original_fft = None
        PROFILING = False


def enable_profiling() -> None:
    """Install the hot-path hooks (refcounted; pair with disable)."""
    _install()


def disable_profiling() -> None:
    _uninstall()


@contextmanager
def profile():
    """Run a block with the hot-path hooks installed."""
    _install()
    try:
        yield
    finally:
        _uninstall()


def record_solver_advance(solver_name: str, n_steps: int, seconds: float) -> None:
    """Called by solver loops after an ``advance()``/``step()`` burst.

    Call sites guard on :data:`PROFILING`, so this only runs (and only
    touches the registry) while a :func:`profile` context is active.
    """
    registry = _registry()
    registry.counter("solver_steps_total", labels={"solver": solver_name}).inc(n_steps)
    registry.histogram("solver_advance_seconds").observe(seconds)
