"""Metric primitives and the registry behind ``/metrics`` and ``/stats``.

Four instrument kinds, all lock-protected and cheap enough for per-batch
updates:

* :class:`Counter` — monotone total (requests served, solver steps).
* :class:`Gauge` — last-written value (loss, learning rate, enstrophy).
* :class:`Histogram` — fixed-bucket distribution with interpolated
  percentiles; bounded memory regardless of observation count.
* :class:`WindowedSummary` — exact sliding-window percentiles over the
  most recent observations (the old ``LatencyStats``, absorbed here).

A :class:`MetricsRegistry` names instruments (optionally with labels),
renders Prometheus text exposition for the serve ``/metrics`` endpoint
and JSON snapshots for ``/stats``.  The accumulating :class:`Timer` and
:func:`timed` helpers that used to live in ``repro.utils.timing`` are
kept here so the whole timing surface has one home.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "WindowedSummary",
    "LatencyStats",
    "MetricsRegistry",
    "Timer",
    "timed",
    "DEFAULT_LATENCY_BUCKETS",
]

# Geometric ~1-2.5-5 ladder from 0.1 ms to 60 s — wide enough for tensor
# ops at the bottom and paper-scale training epochs at the top.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing total."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (optionally adjusted incrementally)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with linear-interpolated percentiles.

    ``buckets`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Memory is O(buckets)
    forever, unlike a sample window — the right trade for unbounded
    streams (every tensor op, every solver step).  Percentiles assume a
    uniform distribution inside each bucket, so the error is at most one
    bucket width (the test suite pins this against ``np.percentile``).
    """

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def bucket_counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """Interpolated percentile (``q`` in [0, 100]); 0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            counts = list(self._counts)
            count, lo, hi = self.count, self.min, self.max
        return self._interpolate(counts, count, lo, hi, q)

    def _interpolate(self, counts, count, lo, hi, q: float) -> float:
        if not count:
            return 0.0
        rank = q / 100.0 * count
        cumulative = 0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[idx - 1] if idx > 0 else min(lo, self.bounds[0])
                upper = self.bounds[idx] if idx < len(self.bounds) else hi
                lower = max(lower, lo)
                upper = min(upper, hi)
                if upper <= lower:
                    return lower
                frac = (rank - cumulative) / n
                return lower + frac * (upper - lower)
            cumulative += n
        return hi

    def summary(self) -> dict:
        """``{count, mean, p50, p95, max}`` snapshot (same shape as summaries).

        All fields come from one locked copy, so a concurrent
        ``observe`` can never yield a count that disagrees with the
        percentiles next to it.
        """
        with self._lock:
            counts = list(self._counts)
            count, total = self.count, self.total
            lo, hi = self.min, self.max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": self._interpolate(counts, count, lo, hi, 50.0),
            "p95": self._interpolate(counts, count, lo, hi, 95.0),
            "max": hi if count else 0.0,
        }


class WindowedSummary:
    """Thread-safe tracker with exact sliding-window percentiles.

    Keeps lifetime ``count``/``total``/``max`` plus a bounded window of
    the most recent observations from which percentiles are computed —
    the serving ``/stats`` endpoint reports p50/p95 from here.  This is
    the class previously published as ``repro.utils.timing.LatencyStats``.
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=int(window))
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``q`` in [0, 100]) over the window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        return self._interpolate(samples, q)

    @staticmethod
    def _interpolate(samples: list, q: float) -> float:
        if not samples:
            return 0.0
        pos = (len(samples) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def summary(self) -> dict:
        """``{count, mean, p50, p95, max}`` snapshot (seconds), taken
        under one lock acquisition so the fields agree with each other."""
        with self._lock:
            samples = sorted(self._samples)
            count, total, peak = self.count, self.total, self.max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": self._interpolate(samples, 50.0),
            "p95": self._interpolate(samples, 95.0),
            "max": peak,
        }


# Historical name, still exported through repro.utils for callers that
# predate the obs subsystem.
LatencyStats = WindowedSummary


class Timer:
    """Accumulating stopwatch, safe for concurrent and nested use.

    Each thread keeps its own stack of start times, so overlapping
    ``with t:`` blocks from different threads (or nested blocks in one
    thread) each contribute their own interval; the accumulated totals
    are lock-protected.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.n_intervals = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def __enter__(self) -> "Timer":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        stack = getattr(self._local, "stack", None)
        assert stack, "Timer.__exit__ without a matching __enter__ in this thread"
        interval = time.perf_counter() - stack.pop()
        with self._lock:
            self.elapsed += interval
            self.n_intervals += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.elapsed / self.n_intervals if self.n_intervals else 0.0


@contextmanager
def timed(label: str, sink=None):
    """Context manager printing (or collecting) the elapsed time."""
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    message = f"{label}: {elapsed:.3f}s"
    if sink is None:
        print(message)
    else:
        sink(message)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram, "summary": WindowedSummary}


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Named, optionally labelled instruments with get-or-create semantics.

    ``counter/gauge/histogram/summary`` return the existing instrument
    when called again with the same name and labels; asking for the same
    name with a different kind raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._instruments: dict[tuple[str, tuple], object] = {}

    # -- instrument constructors --------------------------------------
    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(name, "counter", labels, Counter)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(name, "gauge", labels, Gauge)

    def histogram(self, name: str, labels: dict | None = None,
                  buckets=DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get(name, "histogram", labels, lambda: Histogram(buckets))

    def summary(self, name: str, labels: dict | None = None, window: int = 2048) -> WindowedSummary:
        return self._get(name, "summary", labels, lambda: WindowedSummary(window))

    def _get(self, name, kind, labels, factory):
        key = (name, _label_key(labels))
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered != kind:
                raise ValueError(f"metric {name!r} already registered as a {registered}")
            self._kinds[name] = kind
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = factory()
            return instrument

    # -- introspection -------------------------------------------------
    def collect(self) -> list[tuple[str, str, tuple, object]]:
        """Sorted ``(name, kind, labels, instrument)`` rows."""
        with self._lock:
            rows = [
                (name, self._kinds[name], labels, instrument)
                for (name, labels), instrument in self._instruments.items()
            ]
        return sorted(rows, key=lambda r: (r[0], r[2]))

    def labelled(self, name: str) -> dict[tuple, object]:
        """All instruments registered under ``name``, keyed by label tuple."""
        with self._lock:
            return {
                labels: inst for (n, labels), inst in self._instruments.items() if n == name
            }

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument."""
        out: dict[str, object] = {}
        for name, kind, labels, inst in self.collect():
            if kind == "counter" or kind == "gauge":
                value = inst.value
            else:
                value = inst.summary()
            if labels:
                bucket = out.setdefault(name, {})
                bucket[",".join(f"{k}={v}" for k, v in labels)] = value
            else:
                out[name] = value
        return out

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (v0.0.4) for ``/metrics``."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for name, kind, labels, inst in self.collect():
            full = _prom_name(prefix + name)
            if full not in seen_types:
                prom_kind = {"counter": "counter", "gauge": "gauge",
                             "histogram": "histogram", "summary": "summary"}[kind]
                lines.append(f"# TYPE {full} {prom_kind}")
                seen_types.add(full)
            label_str = _prom_labels(labels)
            if kind in ("counter", "gauge"):
                lines.append(f"{full}{label_str} {inst.value:g}")
            elif kind == "histogram":
                cumulative = 0
                for bound, count in zip(inst.bounds, inst.bucket_counts()):
                    cumulative += count
                    le = (labels or ()) + (("le", f"{bound:g}"),)
                    lines.append(f"{full}_bucket{_prom_labels(tuple(le))} {cumulative}")
                le = (labels or ()) + (("le", "+Inf"),)
                lines.append(f"{full}_bucket{_prom_labels(tuple(le))} {inst.count}")
                lines.append(f"{full}_sum{label_str} {inst.total:g}")
                lines.append(f"{full}_count{label_str} {inst.count}")
            else:  # summary
                for q in (0.5, 0.95):
                    ql = (labels or ()) + (("quantile", f"{q:g}"),)
                    lines.append(f"{full}{_prom_labels(tuple(ql))} {inst.percentile(q * 100):g}")
                lines.append(f"{full}_sum{label_str} {inst.total:g}")
                lines.append(f"{full}_count{label_str} {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")
