"""CLI backends for ``repro trace`` and ``repro profile``.

``repro trace run.jsonl`` renders the aggregated span tree of a JSONL
trace (count / total / self time per span path).  ``repro profile
script.py`` runs a Python script — typically one of the ``benchmarks/``
entry points — under full instrumentation (spans + hot-path profiling
hooks), writes the trace next to the script and prints the tree; with
``--overhead-budget`` it additionally times an uninstrumented run and
fails when instrumentation costs more than the budgeted percentage.
"""

from __future__ import annotations

import runpy
import sys
import time
from pathlib import Path

from .trace import load_trace, render_tree

__all__ = ["add_trace_arguments", "run_trace", "add_profile_arguments", "run_profile"]


# ---------------------------------------------------------------------------
# repro trace
# ---------------------------------------------------------------------------


def add_trace_arguments(parser) -> None:
    parser.add_argument("trace", help="JSONL trace written by the obs tracer")
    parser.add_argument("--min-self-ms", type=float, default=0.0,
                        help="hide leaf spans with less self time than this")
    parser.add_argument("--depth", type=int, default=None,
                        help="limit the rendered tree depth")
    parser.add_argument("--events", action="store_true",
                        help="also list instantaneous event records")


def run_trace(args) -> int:
    try:
        records = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_tree(records, min_self_ms=args.min_self_ms, max_depth=args.depth))
    if args.events:
        events = [r for r in records if r.get("type") == "event"]
        if events:
            print(f"\nevents ({len(events)}):")
            for record in events:
                attrs = record.get("attrs") or {}
                detail = " ".join(f"{k}={v}" for k, v in attrs.items())
                print(f"  {record['t0']:>10.3f}s {record['name']:<24} {detail}")
    return 0


# ---------------------------------------------------------------------------
# repro profile
# ---------------------------------------------------------------------------


def add_profile_arguments(parser) -> None:
    parser.add_argument("script",
                        help="Python script to run under instrumentation "
                             "(profile options must come before it)")
    parser.add_argument("script_args", nargs="...", default=[],
                        help="everything after the script is forwarded to it")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="trace destination (default: <script>.trace.jsonl)")
    parser.add_argument("--no-hooks", action="store_true",
                        help="spans only; skip the tensor/FFT/solver profiling hooks")
    parser.add_argument("--min-self-ms", type=float, default=0.0)
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument("--overhead-budget", type=float, default=None, metavar="PCT",
                        help="also time an uninstrumented run (after a cache-warming "
                             "run) and fail when instrumentation adds more than PCT%%")


def _run_script(script: Path, argv: list[str]) -> float:
    """Execute ``script`` as ``__main__``; returns wall seconds."""
    saved_argv, saved_path = sys.argv, list(sys.path)
    sys.argv = [str(script)] + list(argv)
    sys.path.insert(0, str(script.parent))
    start = time.perf_counter()
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exc:
        if exc.code not in (None, 0):
            raise
    finally:
        sys.argv = saved_argv
        sys.path[:] = saved_path
    return time.perf_counter() - start


def run_profile(args) -> int:
    from . import configure, metrics_registry, shutdown

    script = Path(args.script).resolve()
    if not script.exists():
        print(f"error: no such script {script}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else script.with_name(script.stem + ".trace.jsonl")

    plain = None
    if args.overhead_budget is not None:
        # First run warms every disk cache (datasets, trained models) so
        # the plain-vs-instrumented comparison measures instrumentation,
        # not cache misses; the warm-up is also the *instrumented* one so
        # any residual warm/cold bias counts against the budget.
        configure(trace_path=None, profile=not args.no_hooks, keep_records=False)
        try:
            _run_script(script, args.script_args)
        finally:
            shutdown()
        plain = _run_script(script, args.script_args)

    configure(trace_path=out, profile=not args.no_hooks, keep_records=False)
    try:
        instrumented = _run_script(script, args.script_args)
    finally:
        registry_snapshot = metrics_registry().snapshot()
        shutdown()

    records = load_trace(out)
    print(f"\nprofile: {len(records)} record(s) -> {out}")
    print(render_tree(records, min_self_ms=args.min_self_ms, max_depth=args.depth))
    if registry_snapshot:
        print("\nmetrics:")
        for name in sorted(registry_snapshot):
            print(f"  {name}: {registry_snapshot[name]}")

    if plain is not None:
        overhead = (instrumented - plain) / plain * 100.0 if plain > 0 else 0.0
        print(f"\noverhead: plain {plain:.3f}s instrumented {instrumented:.3f}s "
              f"({overhead:+.1f}%, budget {args.overhead_budget:.1f}%)")
        if overhead > args.overhead_budget:
            print("error: instrumentation overhead exceeds budget", file=sys.stderr)
            return 1
    return 0
