"""repro.obs — tracing, metrics and profiling for long-running workloads.

The paper's workloads are hours long (Table I trainings up to 23 h,
hybrid roll-outs alternating solver and network for thousands of steps,
5000-simulation dataset sweeps); this package is the visibility layer
over all of them.  Three pieces:

* **Spans** (:mod:`repro.obs.trace`) — nested timed regions streamed to
  a JSONL file and rendered by ``repro trace``.
* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, histograms
  and windowed summaries in a registry the serve ``/metrics`` endpoint
  exposes in Prometheus text format.
* **Profiling hooks** (:mod:`repro.obs.hooks`) — tensor-op / FFT /
  solver-step instrumentation that is *patched in* only while enabled,
  so the disabled state costs nothing on the hot paths.

Everything is off by default.  Enable per process::

    import repro.obs as obs
    obs.configure(trace_path="runs/train.jsonl")     # spans + metrics
    ...
    obs.shutdown()

or per environment (picked up by the CLI and the benchmark entry
points): ``REPRO_OBS=1`` enables metrics+spans in memory,
``REPRO_OBS=path/to/trace.jsonl`` streams spans there, and
``REPRO_OBS_PROFILE=1`` additionally installs the hot-path hooks.

Instrumented call sites follow one pattern: ``obs.span(...)`` always
returns a context manager that measures its duration (the training loop
reuses it for ``epoch_seconds``), but records are only emitted while a
tracer is configured; anything *expensive to compute* — physics
diagnostics, per-step events — hides behind ``if obs.enabled():``.
"""

from __future__ import annotations

import os
import threading

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyStats,
    MetricsRegistry,
    Timer,
    WindowedSummary,
    timed,
)
from .trace import Span, Tracer, build_tree, load_trace, render_tree
from . import hooks

__all__ = [
    "configure", "configure_from_env", "shutdown", "enabled", "profiling_enabled",
    "span", "event", "metric_gauge", "metric_counter", "current_tracer",
    "metrics_registry", "render_prometheus",
    "Tracer", "Span", "MetricsRegistry",
    "Counter", "Gauge", "Histogram", "WindowedSummary", "LatencyStats",
    "Timer", "timed",
    "load_trace", "build_tree", "render_tree",
    "hooks",
]

_lock = threading.Lock()
_tracer: Tracer | None = None
_registry = MetricsRegistry()
_profiling = False


def configure(trace_path=None, profile: bool = False, registry: MetricsRegistry | None = None,
              keep_records: bool = True) -> Tracer:
    """Enable observability for this process; returns the active tracer.

    Re-configuring replaces the previous tracer (closing its file).
    ``profile=True`` additionally installs the hot-path hooks from
    :mod:`repro.obs.hooks`.
    """
    global _tracer, _registry, _profiling
    with _lock:
        if _tracer is not None:
            _tracer.close()
        if registry is not None:
            _registry = registry
        _tracer = Tracer(trace_path, keep_records=keep_records)
        if profile and not _profiling:
            hooks.enable_profiling()
            _profiling = True
        elif not profile and _profiling:
            hooks.disable_profiling()
            _profiling = False
    return _tracer


def configure_from_env(environ=os.environ) -> Tracer | None:
    """Honour ``REPRO_OBS`` / ``REPRO_OBS_PROFILE`` (used by CLI + benches).

    ``REPRO_OBS`` unset/empty/"0" leaves observability off; "1" enables
    in-memory tracing; any other value is treated as a JSONL path.
    """
    value = environ.get("REPRO_OBS", "").strip()
    if not value or value == "0":
        return None
    path = None if value == "1" else value
    profile = environ.get("REPRO_OBS_PROFILE", "").strip() not in ("", "0")
    return configure(trace_path=path, profile=profile)


def shutdown() -> None:
    """Disable observability; flush + close the trace file."""
    global _tracer, _profiling
    with _lock:
        if _tracer is not None:
            _tracer.close()
            _tracer = None
        if _profiling:
            hooks.disable_profiling()
            _profiling = False


def enabled() -> bool:
    """True while a tracer is configured (guards expensive diagnostics)."""
    return _tracer is not None


def profiling_enabled() -> bool:
    return _profiling


def current_tracer() -> Tracer | None:
    return _tracer


def metrics_registry() -> MetricsRegistry:
    """The process-wide default registry (serve keeps its own per service)."""
    return _registry


def render_prometheus(prefix: str = "repro_") -> str:
    return _registry.render_prometheus(prefix=prefix)


def span(name: str, **attrs) -> Span:
    """A timed region; always measures, emits only when tracing is on.

    The returned :class:`Span` exposes ``.duration`` after exit even
    with observability disabled, so call sites can use one code path for
    both their own timing needs and the trace.
    """
    return Span(_tracer, name, attrs or None)


def event(name: str, **attrs) -> None:
    """Record an instantaneous measurement (no-op when disabled)."""
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, **attrs)


def metric_gauge(name: str, value: float, labels: dict | None = None) -> None:
    """Set a gauge on the default registry (no-op when disabled)."""
    if _tracer is not None:
        _registry.gauge(name, labels=labels).set(value)


def metric_counter(name: str, amount: float = 1.0, labels: dict | None = None) -> None:
    """Bump a counter on the default registry (no-op when disabled)."""
    if _tracer is not None:
        _registry.counter(name, labels=labels).inc(amount)
