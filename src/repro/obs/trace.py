"""Span tracer: nested timed regions streamed to a JSONL file.

A span is a named, timed region of execution.  Spans nest through a
thread-local stack, so concurrent serve workers and the training loop
each build their own branch of the tree without locking on the hot path;
only the JSONL emit takes a lock.  Every record is one JSON object per
line::

    {"type": "meta", "wall_time": ..., "pid": ...}
    {"type": "span", "name": "train.epoch", "id": 7, "parent": 3,
     "thread": 140.., "t0": 1.234, "dur": 0.456, "attrs": {"epoch": 2}}
    {"type": "event", "name": "hybrid.diag", "id": 9, "parent": 8, ...}

``t0`` is seconds since the tracer was created (monotonic clock), so
spans order and subtract correctly even across NTP steps.  The matching
reader/renderer (:func:`load_trace`, :func:`render_tree`) backs the
``repro trace`` CLI.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path

__all__ = ["Span", "Tracer", "SpanRecord", "load_trace", "build_tree", "render_tree"]


class Span:
    """One timed region; use as a context manager via :meth:`Tracer.span`.

    ``duration`` is available after exit (seconds, monotonic), which is
    how the training loop keeps ``history.epoch_seconds`` and the trace
    in exact agreement.
    """

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "start", "duration", "error")

    def __init__(self, tracer: "Tracer | None", name: str, attrs: dict | None):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start = 0.0
        self.duration: float | None = None
        self.error: str | None = None

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (e.g. a loss known only at exit)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self.tracer
        if tracer is not None:
            stack = tracer._stack()
            self.parent_id = stack[-1] if stack else None
            self.span_id = next(tracer._ids)
            stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        tracer = self.tracer
        if tracer is None:
            return
        stack = tracer._stack()
        assert stack and stack[-1] == self.span_id, \
            f"span {self.name!r} exited out of order (entered from another thread?)"
        stack.pop()
        if exc_type is not None:
            self.error = exc_type.__name__
        tracer._emit_span(self)


class Tracer:
    """Collects spans/events in memory and (optionally) streams JSONL.

    Parameters
    ----------
    path:
        JSONL destination.  ``None`` keeps records in memory only —
        enough for tests and for the end-of-run summary.
    keep_records:
        Also retain every record in :attr:`records` when writing to a
        file (default True; switch off for very long runs).
    """

    def __init__(self, path=None, keep_records: bool = True):
        self.path = Path(path) if path is not None else None
        self.keep_records = bool(keep_records) or self.path is None
        self.records: list[dict] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._fh = None
        self._perf0 = time.perf_counter()
        self._closed = False
        # repro: ignore[RPR006] -- calendar time intended: the meta record anchors t0 to the wall clock
        self._write({"type": "meta", "wall_time": time.time(), "pid": os.getpid()})

    # -- span API ------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs or None)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous point (a measurement, not a region)."""
        stack = self._stack()
        record = {
            "type": "event",
            "name": name,
            "id": next(self._ids),
            "parent": stack[-1] if stack else None,
            "thread": threading.get_ident(),
            "t0": time.perf_counter() - self._perf0,
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)

    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- plumbing ------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit_span(self, span: Span) -> None:
        record = {
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "thread": threading.get_ident(),
            "t0": span.start - self._perf0,
            "dur": span.duration,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.error is not None:
            record["error"] = span.error
        self._write(record)

    def _write(self, record: dict) -> None:
        with self._lock:
            if self._closed:
                return
            if self.keep_records:
                self.records.append(record)
            if self.path is not None:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    # Unbuffered binary: each record is one write syscall,
                    # so a crash (even SIGKILL) can tear at most the final
                    # line — never interleave or hold lines in a userspace
                    # buffer.  load_trace drops a torn tail.
                    self._fh = self.path.open("wb", buffering=0)  # repro: ignore[RPR008] -- append-only JSONL sink; load_trace tolerates a torn tail
                line = json.dumps(record, default=_jsonable) + "\n"
                self._fh.write(line.encode("utf-8"))

    def flush(self) -> None:
        """Force records to disk (fsync; writes are already unbuffered)."""
        with self._lock:
            if self._fh is not None:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def _jsonable(obj):
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


# ---------------------------------------------------------------------------
# reading + rendering (the `repro trace` CLI)
# ---------------------------------------------------------------------------


class SpanRecord(dict):
    """A parsed trace line; plain dict with attribute sugar."""

    @property
    def is_span(self) -> bool:
        return self.get("type") == "span"


def load_trace(path) -> list[SpanRecord]:
    """Parse a JSONL trace file; raises ValueError on malformed lines.

    A malformed *final* line is dropped instead: the tracer writes one
    record per syscall, so a crashed process can leave at most a torn
    tail — that must not make the rest of the trace unreadable.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = [(lineno, line.strip()) for lineno, line in enumerate(fh, 1)]
    lines = [(lineno, line) for lineno, line in lines if line]
    records: list[SpanRecord] = []
    for i, (lineno, line) in enumerate(lines):
        is_tail = i == len(lines) - 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if is_tail:
                break  # torn tail from an interrupted write
            raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
        if not isinstance(obj, dict) or "type" not in obj:
            if is_tail:
                break
            raise ValueError(f"{path}:{lineno}: trace records must be objects with 'type'")
        records.append(SpanRecord(obj))
    return records


class _Node:
    __slots__ = ("path", "name", "count", "total", "child_total", "children")

    def __init__(self, path: tuple, name: str):
        self.path = path
        self.name = name
        self.count = 0
        self.total = 0.0
        self.child_total = 0.0
        self.children: dict[str, _Node] = {}

    @property
    def self_time(self) -> float:
        return max(self.total - self.child_total, 0.0)


def build_tree(records: list) -> list[_Node]:
    """Aggregate span records into a name-path tree with total/self times.

    Sibling spans with the same name collapse into one node carrying a
    count — the natural view for loops (``train.epoch`` ×30).
    """
    spans = {r["id"]: r for r in records if r.get("type") == "span"}
    paths: dict[int, tuple] = {}

    def path_of(span_id: int) -> tuple:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        record = spans[span_id]
        parent = record.get("parent")
        prefix = path_of(parent) if parent in spans else ()
        result = paths[span_id] = prefix + (record["name"],)
        return result

    roots: dict[str, _Node] = {}
    for span_id, record in spans.items():
        path = path_of(span_id)
        level, node = roots, None
        for depth, name in enumerate(path):
            node = level.get(name)
            if node is None:
                node = level[name] = _Node(path[: depth + 1], name)
            level = node.children
        node.count += 1
        node.total += float(record.get("dur", 0.0))
    # Child totals for self-time, bottom-up per node.
    def fill(node: _Node) -> None:
        node.child_total = 0.0
        for child in node.children.values():
            fill(child)
            node.child_total += child.total
    for root in roots.values():
        fill(root)
    return sorted(roots.values(), key=lambda n: -n.total)


def render_tree(records: list, min_self_ms: float = 0.0, max_depth: int | None = None) -> str:
    """Text rendering of the aggregated span tree (``repro trace``)."""
    roots = build_tree(records)
    n_spans = sum(1 for r in records if r.get("type") == "span")
    n_events = sum(1 for r in records if r.get("type") == "event")
    lines = [f"trace: {n_spans} span(s), {n_events} event(s)"]
    if not roots:
        return lines[0]
    header = f"{'span':<48} {'count':>7} {'total':>10} {'self':>10}"
    lines.append(header)
    lines.append("-" * len(header))

    def walk(node: _Node, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        label = "  " * depth + node.name
        lines.append(
            f"{label:<48} {node.count:>7} {node.total:>9.3f}s {node.self_time:>9.3f}s"
        )
        children = sorted(node.children.values(), key=lambda n: -n.total)
        for child in children:
            if child.self_time * 1000.0 >= min_self_ms or child.children:
                walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
