"""``repro analyze`` — whole-program static analysis from the command line.

Usage::

    python -m repro.cli analyze src                     # text report
    python -m repro.cli analyze src --format json       # machine-readable
    python -m repro.cli analyze src --graph callgraph.dot
    python -m repro.cli analyze src --select RPR103,RPR104
    python -m repro.cli analyze --list-rules

Exit codes mirror ``repro check``: 0 — clean (only suppressed/baselined
findings); 1 — new findings; 2 — usage, parse or baseline errors.  The
JSON report carries the call-graph stats and the seed-provenance table
alongside the findings.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..checks.baseline import Baseline, load_baseline, write_baseline
from .engine import ANALYSIS_RULES, analyze_paths

__all__ = ["add_analyze_arguments", "run_analyze", "main"]

DEFAULT_BASELINE = "analyze-baseline.json"


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``analyze`` options to an (sub)parser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file; report every finding")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline and exit 0")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--graph", default=None, metavar="FILE",
                        help="write the call graph as Graphviz dot to FILE ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the analysis catalogue and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also list baselined and suppressed findings (text format)")


def run_analyze(args) -> int:
    if args.list_rules:
        for rule, (name, description) in sorted(ANALYSIS_RULES.items()):
            print(f"{rule}  {name:<18} {description}")
        return 0

    select = [r.strip() for r in args.select.split(",") if r.strip()] if args.select else None
    try:
        baseline = Baseline() if (args.no_baseline or args.write_baseline) \
            else load_baseline(args.baseline)
        report = analyze_paths(args.paths, select=select, baseline=baseline,
                               want_dot=args.graph is not None)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"repro analyze: error: {exc}", file=sys.stderr)
        return 2

    if args.graph is not None:
        if args.graph == "-":
            sys.stdout.write(report.dot or "")
        else:
            with open(args.graph, "w", encoding="utf-8") as fh:
                fh.write(report.dot or "")

    result = report.result
    if args.write_baseline:
        new_baseline = Baseline.from_findings(
            result.findings,
            comment="Grandfathered whole-program findings; fix or justify "
                    "before extending.",
        )
        write_baseline(args.baseline, new_baseline)
        print(f"wrote {len(new_baseline)} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        if args.verbose:
            for label, bucket in (("baselined", result.baselined),
                                  ("suppressed", result.suppressed)):
                for finding in bucket:
                    print(f"[{label}] {finding.render()}")
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        stats = report.graph_stats
        print(
            f"analyzed {result.n_files} module(s) "
            f"({stats.get('nodes', 0)} call-graph nodes, "
            f"{stats.get('edges', 0)} edges, "
            f"{stats.get('concurrent', 0)} concurrency-reachable): "
            f"{len(result.findings)} finding(s), "
            f"{len(result.baselined)} baselined, "
            f"{len(result.suppressed)} suppressed"
            + (f", {len(result.errors)} error(s)" if result.errors else "")
        )
    if result.errors:
        return 2
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze", description="repro whole-program static analysis"
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
