"""Project-wide call graph with concurrency entry points and lock context.

Edges connect fully-qualified function names.  Each edge remembers
whether its call site sits lexically inside a ``with self.<lock>:``
block of the caller — the race analysis uses that to credit
interprocedural lock domination (a private method written without a
lock is fine when *every* concurrent path into it already holds the
owning lock).

Concurrency entry points are collected structurally:

* ``threading.Thread(target=f)`` / ``Thread(target=self.m)``;
* ``executor.submit(f, ...)`` and ``pool.map(f, ...)``;
* ``do_GET``/``do_POST``/``handle``-style methods of HTTP handler
  classes (any class whose base name ends in ``HTTPRequestHandler``);
* callables bound into another class at a construction site
  (``WorkerPool(queue, self._execute)``) are followed when the pool
  later invokes ``self.execute(...)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .project import ClassInfo, FunctionInfo, ModuleInfo, Project, _dotted

__all__ = ["CallGraph", "build_callgraph", "CallEdge"]

_SPAWNER_CALLS = {"Thread"}
_SUBMIT_METHODS = {"submit", "map", "apply_async", "map_async", "imap", "imap_unordered"}
_HANDLER_METHOD_PREFIXES = ("do_",)
_HANDLER_METHODS = {"handle", "handle_one_request"}


@dataclass(frozen=True)
class CallEdge:
    caller: str
    callee: str
    line: int
    locked: bool        # call site lexically under a with self.<lock> of the caller
    same_class: bool    # caller and callee are methods of the same class


@dataclass
class CallGraph:
    edges: list[CallEdge] = field(default_factory=list)
    out: dict[str, set[str]] = field(default_factory=dict)
    into: dict[str, list[CallEdge]] = field(default_factory=dict)
    spawned: set[str] = field(default_factory=set)   # thread/process targets
    entries: set[str] = field(default_factory=set)   # spawned + handler methods

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self.out.setdefault(edge.caller, set()).add(edge.callee)
        self.into.setdefault(edge.callee, []).append(edge)

    def reachable(self, roots) -> set[str]:
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.out.get(qual, ()))
        return seen

    def concurrent(self) -> set[str]:
        """Everything reachable from a concurrency entry point."""
        return self.reachable(self.entries)

    def to_dot(self, concurrent: set[str] | None = None) -> str:
        """Graphviz dot rendering (concurrency-reachable nodes shaded)."""
        concurrent = concurrent if concurrent is not None else self.concurrent()
        nodes = sorted({e.caller for e in self.edges} | {e.callee for e in self.edges}
                       | self.entries)
        lines = ["digraph callgraph {", '  rankdir="LR";', '  node [shape=box, fontsize=9];']
        for node in nodes:
            attrs = []
            if node in self.entries:
                attrs.append('color="red"')
            if node in concurrent:
                attrs.append('style="filled"')
                attrs.append('fillcolor="lightyellow"')
            lines.append(f'  "{node}"' + (f" [{', '.join(attrs)}]" if attrs else "") + ";")
        seen_pairs = set()
        for edge in self.edges:
            pair = (edge.caller, edge.callee, edge.locked)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            style = ' [color="blue", label="locked"]' if edge.locked else ""
            lines.append(f'  "{edge.caller}" -> "{edge.callee}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def stats(self) -> dict:
        return {
            "nodes": len({e.caller for e in self.edges} | {e.callee for e in self.edges}),
            "edges": len(self.edges),
            "entries": len(self.entries),
            "concurrent": len(self.concurrent()),
        }


def _is_handler_class(cls: ClassInfo) -> bool:
    return any(base.split(".")[-1].endswith("HTTPRequestHandler")
               for base in cls.base_names())


def _callable_ref(project: Project, module: ModuleInfo, cls: ClassInfo | None,
                  node: ast.expr) -> str | None:
    """Resolve an expression used as a *value* to a function qualname."""
    name = _dotted(node)
    if name is None:
        return None
    if cls is not None and name.startswith("self."):
        rest = name[5:]
        if "." not in rest and rest in cls.methods:
            return cls.methods[rest].qual
        return None
    qual = project.resolve_name(module, name)
    if qual is not None and project.function_for_qual(qual) is not None:
        return qual
    return None


def _local_instance_types(project: Project, fn: FunctionInfo) -> dict[str, str]:
    """Local variables assigned from ``ClassName(...)`` within ``fn``."""
    out: dict[str, str] = {}
    cls = project.class_of(fn)
    for node in ast.walk(fn.node):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            qual = project.resolve_call(fn.module, node.value.func, cls)
            if qual in project.classes:
                out[node.targets[0].id] = qual
    # annotated parameters contribute too
    args = fn.node.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        got = project._annotation_class(fn.module, a.annotation)
        if got:
            out.setdefault(a.arg, got)
    return out


def _bind_constructor_callables(project: Project) -> None:
    """Record callables passed into constructors onto the target class.

    ``WorkerPool(queue, self._execute)`` + ``self.execute = execute`` in
    ``WorkerPool.__init__`` teaches the graph that ``self.execute(...)``
    inside WorkerPool methods may call ``InferenceService._execute``.
    """
    for fn in list(project.iter_functions()):
        cls = project.class_of(fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            qual = project.resolve_call(fn.module, node.func, cls)
            target_cls = project.classes.get(project.canonical(qual) or "")
            if target_cls is None:
                continue
            init = target_cls.methods.get("__init__")
            if init is None:
                continue
            params = [p for p in init.params if p != "self"]
            bound: dict[str, str] = {}
            for i, arg in enumerate(node.args):
                ref = _callable_ref(project, fn.module, cls, arg)
                if ref and i < len(params):
                    bound[params[i]] = ref
            for kw in node.keywords:
                ref = _callable_ref(project, fn.module, cls, kw.value)
                if ref and kw.arg:
                    bound[kw.arg] = ref
            if not bound:
                continue
            # map parameter -> stored attr via __init__ "self.x = param"
            for stmt in ast.walk(init.node):
                if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Attribute)
                        and isinstance(stmt.targets[0].value, ast.Name)
                        and stmt.targets[0].value.id == "self"
                        and isinstance(stmt.value, ast.Name)
                        and stmt.value.id in bound):
                    target_cls.attr_callables.setdefault(
                        stmt.targets[0].attr, set()
                    ).add(bound[stmt.value.id])


def _lock_context(item: ast.withitem, cls: ClassInfo | None) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    name = _dotted(expr)
    if name is None or not name.startswith("self."):
        return False
    attr = name[5:].split(".")[0]
    if cls is not None and attr in cls.lock_attrs:
        return True
    return "lock" in attr.lower() or "cond" in attr.lower()


def _walk_calls(fn: FunctionInfo, cls: ClassInfo | None):
    """Yield ``(call_node, locked)`` with lexical lock context tracked."""

    def visit(node: ast.AST, locked: bool):
        if isinstance(node, ast.With):
            held = locked or any(_lock_context(item, cls) for item in node.items)
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    yield item.context_expr, locked
            for child in node.body:
                yield from visit(child, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested callables execute in an unknown context
        if isinstance(node, ast.Call):
            yield node, locked
        for child in ast.iter_child_nodes(node):
            yield from visit(child, locked)

    for stmt in fn.node.body:
        yield from visit(stmt, False)


def build_callgraph(project: Project) -> CallGraph:
    graph = CallGraph()
    _bind_constructor_callables(project)

    for fn in project.iter_functions():
        cls = project.class_of(fn)
        local_types = _local_instance_types(project, fn)
        if cls is not None and (fn.name in _HANDLER_METHODS
                                or fn.name.startswith(_HANDLER_METHOD_PREFIXES)):
            if _is_handler_class(cls):
                graph.entries.add(fn.qual)

        for call, locked in _walk_calls(fn, cls):
            callee_qual = project.resolve_call(fn.module, call.func, cls)
            callee_qual = project.canonical(callee_qual)
            name = _dotted(call.func) or ""
            tail = name.split(".")[-1]

            # -- spawn sites -------------------------------------------
            if tail in _SPAWNER_CALLS:
                for kw in call.keywords:
                    if kw.arg == "target":
                        ref = _callable_ref(project, fn.module, cls, kw.value)
                        if ref:
                            graph.spawned.add(ref)
                            graph.entries.add(ref)
                            graph.add(CallEdge(fn.qual, ref, call.lineno, locked, False))
            elif tail in _SUBMIT_METHODS and call.args:
                ref = _callable_ref(project, fn.module, cls, call.args[0])
                if ref:
                    graph.spawned.add(ref)
                    graph.entries.add(ref)
                    graph.add(CallEdge(fn.qual, ref, call.lineno, locked, False))

            # -- callable-valued attributes: self.execute(...) ---------
            if (cls is not None and isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                    and call.func.attr in cls.attr_callables):
                for ref in cls.attr_callables[call.func.attr]:
                    graph.add(CallEdge(fn.qual, ref, call.lineno, locked, False))
                continue

            # -- instance method calls through local var types ---------
            if callee_qual is None and isinstance(call.func, ast.Attribute):
                base = _dotted(call.func.value)
                if base and base in local_types:
                    target_cls = project.classes.get(local_types[base])
                    if target_cls is not None and call.func.attr in target_cls.methods:
                        callee_qual = target_cls.methods[call.func.attr].qual

            if callee_qual is None:
                continue
            if callee_qual in project.classes:
                init = project.classes[callee_qual].methods.get("__init__")
                if init is None:
                    continue
                callee_qual = init.qual
            if callee_qual not in project.functions:
                continue
            callee_fn = project.functions[callee_qual]
            same = (cls is not None and callee_fn.class_name == cls.name
                    and callee_fn.module is fn.module)
            graph.add(CallEdge(fn.qual, callee_qual, call.lineno, locked, same))

    return graph
