"""Orchestration: project load → call graph → the three analyses.

:func:`analyze_paths` is the single entry the CLI, CI, the tests and the
benchmark share.  Findings flow through the same machinery as the
per-file rule pack — inline ``# repro: ignore[RULE]`` suppressions and a
snippet-keyed occurrence-counted baseline (``analyze-baseline.json`` by
default, separate from ``checks-baseline.json`` so the two gates can be
tightened independently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..checks.baseline import Baseline
from ..checks.findings import CheckResult, Finding
from .callgraph import build_callgraph
from .dtypeflow import DtypeShapeAnalysis
from .project import Project
from .races import RaceAnalysis
from .seeds import SeedTaintAnalysis

__all__ = ["analyze_paths", "AnalyzeReport", "ANALYSIS_RULES"]

ANALYSIS_RULES = {
    "RPR101": ("dtype-widening", "cross-module implicit f32→f64/c128 widening"),
    "RPR102": ("shape-contract", "statically provable shape mismatches"),
    "RPR103": ("unlocked-write", "shared-state writes outside the owning lock"),
    "RPR104": ("torn-read", "multi-attribute reads without the guarding lock"),
    "RPR105": ("seed-provenance", "artifact writes fed by unseeded RNG streams"),
}


@dataclass
class AnalyzeReport:
    """One analyzer run: findings plus the whole-program context."""

    result: CheckResult
    graph_stats: dict = field(default_factory=dict)
    provenance: list[dict] = field(default_factory=list)
    dot: str | None = None

    def to_dict(self) -> dict:
        payload = self.result.to_dict()
        payload["callgraph"] = self.graph_stats
        payload["provenance"] = self.provenance
        return payload


def analyze_paths(
    paths,
    select: list[str] | None = None,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    want_dot: bool = False,
) -> AnalyzeReport:
    """Run the whole-program analyses over ``paths``.

    ``select`` restricts to specific rule ids; unknown ids raise
    ``KeyError`` (mirroring ``check_paths``).  ``baseline`` absorbs
    grandfathered findings; ``want_dot`` additionally renders the call
    graph in Graphviz dot.
    """
    if select:
        unknown = [rule for rule in select if rule not in ANALYSIS_RULES]
        if unknown:
            raise KeyError(f"unknown analysis rule(s): {', '.join(unknown)}")
    baseline = baseline or Baseline()

    project = Project.load(paths, root=root)
    graph = build_callgraph(project)

    findings: list[Finding] = []
    if select is None or any(r in ("RPR101", "RPR102") for r in select):
        findings.extend(DtypeShapeAnalysis(project).run())
    if select is None or any(r in ("RPR103", "RPR104") for r in select):
        findings.extend(RaceAnalysis(project, graph).run())
    seed_analysis = SeedTaintAnalysis(project)
    if select is None or "RPR105" in select:
        findings.extend(seed_analysis.run())
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    findings.sort(key=Finding.sort_key)

    by_path = {module.path: module for module in project.modules.values()}
    matcher = baseline.make_matcher()
    result = CheckResult(n_files=len(project.modules), errors=list(project.errors))
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and module.suppressions.is_suppressed(
                finding.rule, finding.line):
            result.suppressed.append(finding)
        elif matcher(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)

    return AnalyzeReport(
        result=result,
        graph_stats=graph.stats(),
        provenance=seed_analysis.provenance_rows(),
        dot=graph.to_dot() if want_dot else None,
    )
