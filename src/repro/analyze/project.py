"""Whole-program symbol table: modules, imports, classes, functions.

The per-file rules in :mod:`repro.checks` stop at module boundaries; the
analyses in this package need to follow a value (a dtype, a lock, an RNG
stream) *across* them.  :class:`Project` is the shared substrate: it
parses every module under one or more package roots, derives dotted
module names from ``__init__.py`` chains, resolves import bindings
(including relative imports and package re-exports), and indexes every
class and function by fully-qualified name.

Name resolution is static and intentionally modest: dotted attribute
chains through import bindings, local definitions, ``self`` attributes
whose class is known, and one level of constructor/annotation-derived
attribute types.  ``getattr``-style dynamic dispatch is out of scope —
see DESIGN.md for the soundness contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..checks.engine import classify_zone, iter_python_files
from ..checks.suppress import Suppressions, parse_suppressions

__all__ = ["Project", "ModuleInfo", "ClassInfo", "FunctionInfo"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_EVENT_FACTORIES = {"Event", "Semaphore", "BoundedSemaphore", "Barrier", "Queue"}
_LOCAL_FACTORIES = {"local"}


@dataclass
class FunctionInfo:
    """One function or method, addressable by fully-qualified name."""

    qual: str                 # e.g. repro.serve.registry.ModelRegistry.get
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "ModuleInfo"
    class_name: str | None    # enclosing class simple name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class: methods, lock/event/thread-local attribute kinds, attr types."""

    qual: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    event_attrs: set[str] = field(default_factory=set)
    local_attrs: set[str] = field(default_factory=set)
    # self.<attr> -> class qualname, from __init__ annotations/constructor calls
    attr_types: dict[str, str] = field(default_factory=dict)
    # self.<attr> -> callable qualnames bound at construction sites
    attr_callables: dict[str, set[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def base_names(self) -> list[str]:
        out = []
        for base in self.node.bases:
            name = _dotted(base)
            if name:
                out.append(name)
        return out


@dataclass
class ModuleInfo:
    """One parsed source file with its import-binding table."""

    name: str                 # dotted module name, e.g. repro.serve.registry
    path: str                 # display path (posix, relative to root)
    tree: ast.Module
    lines: list[str]
    zone: str
    imports: dict[str, str] = field(default_factory=dict)   # local name -> qualname
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # module-level only
    # module-level instance globals: name -> class qualname
    global_types: dict[str, str] = field(default_factory=dict)
    _suppressions: Suppressions | None = None

    @property
    def suppressions(self) -> Suppressions:
        if self._suppressions is None:
            self._suppressions = parse_suppressions(self.lines)
        return self._suppressions

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute/name chain as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name_for(path: Path) -> str | None:
    """Dotted module name from the ``__init__.py`` package chain above it."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


class Project:
    """Parsed modules + global symbol index + canonical name resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}           # dotted name -> module
        self.functions: dict[str, FunctionInfo] = {}       # qualname -> function
        self.classes: dict[str, ClassInfo] = {}            # qualname -> class
        self.errors: list[str] = []

    # -- construction --------------------------------------------------
    @staticmethod
    def load(paths, root: str | Path | None = None) -> "Project":
        """Parse every ``.py`` under ``paths`` into one project."""
        root = Path(root) if root is not None else Path.cwd()
        project = Project()
        for path in iter_python_files(paths):
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            mod_name = _module_name_for(path)
            if mod_name is None:
                mod_name = path.stem
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError) as exc:
                project.errors.append(f"{rel}: {exc}")
                continue
            info = ModuleInfo(
                name=mod_name, path=rel, tree=tree,
                lines=source.splitlines(), zone=classify_zone(rel),
            )
            project.modules[mod_name] = info
        for info in project.modules.values():
            project._index_module(info)
        for info in project.modules.values():
            project._infer_attr_types(info)
        return project

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            self._index_stmt(info, node)

    def _index_stmt(self, info: ModuleInfo, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_relative(info, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, ast.ClassDef):
            qual = f"{info.name}.{node.name}"
            cls = ClassInfo(qual=qual, node=node, module=info)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FunctionInfo(
                        qual=f"{qual}.{item.name}", node=item,
                        module=info, class_name=node.name,
                    )
                    cls.methods[item.name] = fn
                    self.functions[fn.qual] = fn
            info.classes[node.name] = cls
            self.classes[qual] = cls
            self._scan_attr_kinds(cls)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionInfo(
                qual=f"{info.name}.{node.name}", node=node,
                module=info, class_name=None,
            )
            info.functions[node.name] = fn
            self.functions[fn.qual] = fn
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards, try/except import fallbacks.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_stmt(info, child)

    @staticmethod
    def _resolve_relative(info: ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = info.name.split(".")
        # A package's __init__ has name == package; a module drops its stem.
        anchor = parts[: len(parts) - node.level] if node.level <= len(parts) else []
        base = ".".join(anchor)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _scan_attr_kinds(self, cls: ClassInfo) -> None:
        """Classify ``self.<attr>`` assignments: locks, events, thread-locals."""
        for node in ast.walk(cls.node):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            name = _dotted(node.value.func)
            if not name:
                continue
            tail = name.split(".")[-1]
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    if tail in _LOCK_FACTORIES:
                        cls.lock_attrs.add(target.attr)
                    elif tail in _EVENT_FACTORIES:
                        cls.event_attrs.add(target.attr)
                    elif tail in _LOCAL_FACTORIES:
                        cls.local_attrs.add(target.attr)

    # -- canonicalisation ----------------------------------------------
    def canonical(self, qual: str | None, _depth: int = 0) -> str | None:
        """Follow re-export chains (``from .registry import X``) to the defining name."""
        if qual is None or _depth > 8:
            return qual
        if qual in self.functions or qual in self.classes:
            return qual
        head, _, tail = qual.rpartition(".")
        if not head:
            return qual
        # qual = <module>.<name>: follow the module's import binding for name.
        module = self.modules.get(head)
        if module is not None and tail in module.imports:
            return self.canonical(module.imports[tail], _depth + 1)
        # qual = <something-canonicalisable>.<attr>
        base = self.canonical(head, _depth + 1)
        if base != head:
            return self.canonical(f"{base}.{tail}", _depth + 1)
        return qual

    def resolve_name(self, module: ModuleInfo, name: str) -> str | None:
        """A bare/dotted name used inside ``module`` -> canonical qualname."""
        head, _, rest = name.partition(".")
        if head in module.classes:
            target = module.classes[head].qual
        elif head in module.functions:
            target = module.functions[head].qual
        elif head in module.imports:
            target = module.imports[head]
        elif head in module.global_types:
            # module-level instance: resolve attr as a method of its class
            target = module.global_types[head]
        else:
            return None
        qual = f"{target}.{rest}" if rest else target
        return self.canonical(qual)

    def resolve_call(self, module: ModuleInfo,
                     func: ast.expr,
                     cls: ClassInfo | None = None) -> str | None:
        """Resolve a call's target expression to a canonical qualname.

        Handles dotted names through imports, ``self.method``,
        ``self.<attr>.method`` via inferred attribute types, and
        ``ClassName(...)`` (returned as the class qualname; callers map
        it to ``__init__``).
        """
        name = _dotted(func)
        if name is None:
            return None
        if cls is not None and name.startswith("self."):
            rest = name[5:]
            head, _, tail = rest.partition(".")
            if not tail and head in cls.methods:
                return cls.methods[head].qual
            if tail:
                attr_cls = self.classes.get(self.canonical(cls.attr_types.get(head)) or "")
                if attr_cls is not None:
                    resolved = self._method_on(attr_cls, tail)
                    if resolved:
                        return resolved
            return None
        return self.resolve_name(module, name)

    def _method_on(self, cls: ClassInfo, dotted_tail: str) -> str | None:
        head, _, rest = dotted_tail.partition(".")
        if rest:
            return None
        if head in cls.methods:
            return cls.methods[head].qual
        return None

    # -- attribute/global typing ---------------------------------------
    def _annotation_class(self, module: ModuleInfo, node: ast.expr | None) -> str | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp):  # Optional via "X | None"
            for side in (node.left, node.right):
                got = self._annotation_class(module, side)
                if got:
                    return got
            return None
        if isinstance(node, ast.Subscript):
            return None
        name = _dotted(node)
        if name is None:
            return None
        qual = self.resolve_name(module, name)
        return qual if qual in self.classes else None

    def _infer_attr_types(self, info: ModuleInfo) -> None:
        # module-level instance globals: NAME = ClassName(...)
        for node in info.tree.body:
            if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                    and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)):
                qual = self.resolve_call(info, node.value.func)
                if qual in self.classes:
                    info.global_types[node.targets[0].id] = qual
        for cls in info.classes.values():
            init = cls.methods.get("__init__")
            if init is None:
                continue
            # parameter name -> annotated class qualname
            param_types: dict[str, str] = {}
            args = init.node.args
            for a in args.posonlyargs + args.args + args.kwonlyargs:
                got = self._annotation_class(info, a.annotation)
                if got:
                    param_types[a.arg] = got
            for stmt in ast.walk(init.node):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = stmt.value
                if isinstance(value, ast.Name) and value.id in param_types:
                    cls.attr_types[target.attr] = param_types[value.id]
                elif isinstance(value, ast.Call):
                    qual = self.resolve_call(info, value.func, cls)
                    if qual in self.classes:
                        cls.attr_types[target.attr] = qual
                    else:
                        # factory call: follow the return annotation
                        callee = self.function_for_qual(qual)
                        if callee is not None and callee.name != "__init__":
                            got = self._annotation_class(
                                callee.module, callee.node.returns)
                            if got:
                                cls.attr_types[target.attr] = got

    # -- iteration helpers ---------------------------------------------
    def iter_functions(self):
        return self.functions.values()

    def function_for_qual(self, qual: str | None) -> FunctionInfo | None:
        if qual is None:
            return None
        qual = self.canonical(qual)
        fn = self.functions.get(qual)
        if fn is not None:
            return fn
        cls = self.classes.get(qual)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.class_name is None:
            return None
        return fn.module.classes.get(fn.class_name)
