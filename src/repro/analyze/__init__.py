"""Whole-program static analysis over the repro codebase.

Where :mod:`repro.checks` runs per-file AST rules (RPR001–RPR009), this
package builds a project-wide symbol table (:mod:`.project`) and call
graph (:mod:`.callgraph`), then runs three interprocedural analyses:

* :mod:`.dtypeflow` — RPR101 cross-module dtype widening and RPR102
  shape-contract violations, via a flow-sensitive abstract interpreter;
* :mod:`.races` — RPR103 unlocked shared-state writes and RPR104 torn
  snapshot reads, lock-aware over the concurrency-reachable subgraph;
* :mod:`.seeds` — RPR105 seed-provenance taint from RNG sources to
  artifact writes.

Entry points: :func:`analyze_paths` (library) and ``repro analyze``
(CLI, :mod:`.cli`).
"""

from .callgraph import CallGraph, build_callgraph
from .engine import ANALYSIS_RULES, AnalyzeReport, analyze_paths
from .project import Project

__all__ = [
    "ANALYSIS_RULES",
    "AnalyzeReport",
    "CallGraph",
    "Project",
    "analyze_paths",
    "build_callgraph",
]
