"""RPR103/RPR104 — lock-aware shared-state race detection.

Per-file RPR002 can only see a lexical ``with self._lock`` inside one
serve module.  This analysis is whole-program: the call graph tells us
which functions actually run on worker threads (anything reachable from
a ``Thread(target=...)`` spawn, an executor ``submit``/``map``, or an
HTTP handler method), and its lock-annotated edges let a helper that is
*always* entered with the owning lock held pass without its own ``with``
block.

A class is **concurrency-shared** when one of its methods is itself a
spawn target (its instances straddle the creating thread and the new
one), when a module-global instance of it exists and its methods are
concurrency-reachable (the compile plan cache), or when it owns a lock
and is used from the reachable set — the lock declares the sharing
contract.  Merely having methods *called* from worker threads does not
qualify: per-request objects (solvers, tensors, plan builders) are
thread-confined even though their classes run on workers.  For each
shared class we collect the attributes its concurrency-reachable
methods touch; then:

* **RPR103** — a write (assignment, augmented assignment, or a mutating
  container-method call) to such an attribute that is neither lexically
  inside a ``with self.<lock>`` nor performed in a method whose every
  call edge is lock-held.  Writes from *non*-reachable methods count
  too: a main-thread setter racing worker-thread readers is still a
  race.
* **RPR104** — a torn snapshot: a method reads two or more attributes
  whose writes are lock-guarded elsewhere in the class, without taking
  the lock itself, so it can observe mid-update state (count advanced,
  total not yet).

``__init__``-family methods, lock/event/thread-local attributes, and
lock-dominated helpers are exempt.
"""

from __future__ import annotations

import ast

from ..checks.findings import Finding
from .callgraph import CallGraph, _lock_context
from .project import ClassInfo, FunctionInfo, Project, _dotted

__all__ = ["RaceAnalysis"]

# Mutating container/deque/dict methods — calling one through an
# attribute is a write to that attribute's object.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "add", "update", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "move_to_end",
    "setdefault",
}

_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__", "__set_name__",
                   "__init_subclass__"}


def _walk_attr_access(fn: FunctionInfo, cls: ClassInfo | None):
    """Yield ``(base, attr, node, locked, is_write)`` for attribute accesses.

    ``base`` is the dotted receiver ("self" or a global instance name);
    nested function/lambda bodies are skipped (unknown execution
    context), and lexical ``with self.<lock>`` regions set ``locked``.
    """

    def visit(node: ast.AST, locked: bool):
        if isinstance(node, ast.With):
            held = locked or any(_lock_context(item, cls) for item in node.items)
            for item in node.items:
                yield from visit(item.context_expr, locked)
            for child in node.body:
                yield from visit(child, held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Attribute):
                    base = _dotted(target.value)
                    if base:
                        yield base, target.attr, target, locked, True
                else:
                    yield from visit(target, locked)
            value = getattr(node, "value", None)
            if value is not None:
                yield from visit(value, locked)
            if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Attribute):
                # += also reads the attribute; already yielded as write.
                pass
            return
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Attribute)):
            base = _dotted(node.func.value.value)
            if base:
                yield base, node.func.value.attr, node, locked, True
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                yield from visit(child, locked)
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            base = _dotted(node.value)
            if base:
                yield base, node.attr, node, locked, False
            yield from visit(node.value, locked)
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, locked)

    for stmt in fn.node.body:
        yield from visit(stmt, False)


class RaceAnalysis:
    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.findings: list[Finding] = []

    # -- helpers -------------------------------------------------------
    def _special_attrs(self, cls: ClassInfo) -> set[str]:
        return cls.lock_attrs | cls.event_attrs | cls.local_attrs

    def _global_class(self, fn: FunctionInfo, base: str) -> str | None:
        """Class qualname when ``base`` names a module-global instance."""
        if "." in base or base == "self":
            return None
        qual = fn.module.global_types.get(base)
        if qual is None and base in fn.module.imports:
            imported = self.project.canonical(fn.module.imports[base])
            head, _, tail = (imported or "").rpartition(".")
            mod = self.project.modules.get(head)
            if mod is not None:
                qual = mod.global_types.get(tail)
        return self.project.canonical(qual) if qual else None

    # -- analysis ------------------------------------------------------
    def run(self) -> list[Finding]:
        concurrent = self.graph.concurrent()

        # Methods whose every call edge holds the owning lock (and that
        # are not entry points themselves) inherit the lock context.
        dominated = {
            qual for qual, edges in self.graph.into.items()
            if edges and all(e.locked for e in edges)
            and qual not in self.graph.entries
        }

        # Which classes have instances that genuinely straddle threads?
        has_global = set()
        for module in self.project.modules.values():
            for qual in module.global_types.values():
                canon = self.project.canonical(qual)
                if canon:
                    has_global.add(canon)
        shared_classes: set[str] = set()
        for cls in self.project.classes.values():
            method_quals = {m.qual for m in cls.methods.values()}
            if method_quals & self.graph.entries:
                shared_classes.add(cls.qual)        # spawn target / handler
            elif method_quals & concurrent and (
                    cls.qual in has_global or cls.lock_attrs):
                shared_classes.add(cls.qual)        # shared singleton / lock owner

        # Pass 1: which attrs of shared classes are touched from the
        # concurrency-reachable set, and by whom.
        shared_attrs: dict[str, set[str]] = {}      # class qual -> attrs
        accessors: dict[tuple[str, str], set[str]] = {}  # (cls, attr) -> methods
        for fn in self.project.iter_functions():
            if fn.qual not in concurrent:
                continue
            cls = self.project.class_of(fn)
            for base, attr, _node, _locked, _w in _walk_attr_access(fn, cls):
                if base == "self" and cls is not None:
                    owner = cls.qual
                elif (owner := self._global_class(fn, base)) is None:
                    continue
                if owner not in shared_classes:
                    continue
                shared_attrs.setdefault(owner, set()).add(attr)
                accessors.setdefault((owner, attr), set()).add(fn.qual)

        # Guarded attrs per class: written under a lexical lock somewhere
        # (or from a lock-dominated method) — the lock "owns" them.
        guarded: dict[str, set[str]] = {}
        for fn in self.project.iter_functions():
            cls = self.project.class_of(fn)
            if cls is None or not cls.lock_attrs:
                continue
            for base, attr, _node, locked, is_write in _walk_attr_access(fn, cls):
                if base != "self" or not is_write:
                    continue
                if locked or fn.qual in dominated:
                    guarded.setdefault(cls.qual, set()).add(attr)

        # Pass 2: findings.
        for fn in self.project.iter_functions():
            cls = self.project.class_of(fn)
            if fn.name in _EXEMPT_METHODS:
                continue
            fn_dominated = fn.qual in dominated
            torn_reads: dict[str, ast.AST] = {}
            for base, attr, node, locked, is_write in _walk_attr_access(fn, cls):
                if base == "self":
                    if cls is None:
                        continue
                    owner, owner_cls = cls.qual, cls
                else:
                    owner = self._global_class(fn, base)
                    if owner is None:
                        continue
                    owner_cls = self.project.classes.get(owner)
                if owner_cls is None or attr in self._special_attrs(owner_cls):
                    continue
                if locked or (base == "self" and fn_dominated):
                    continue
                if is_write and attr in shared_attrs.get(owner, ()):  # RPR103
                    readers = sorted(accessors.get((owner, attr), ()) - {fn.qual})
                    shown = ", ".join(r.split(".", 2)[-1] for r in readers[:2]) \
                        or "concurrency-reachable code"
                    self.findings.append(Finding(
                        rule="RPR103",
                        path=fn.module.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"unlocked write to {owner.rsplit('.', 1)[-1]}.{attr}, "
                            f"which {shown} accesses on a worker thread; guard it "
                            f"with the owning lock"
                        ),
                        snippet=fn.module.line_at(node.lineno),
                    ))
                elif (not is_write and base == "self"
                        and attr in guarded.get(owner, ())):
                    # Lock-consistency: the class guards this attribute's
                    # writes, so unlocked multi-attribute reads can tear
                    # even without a proven concurrent path.
                    torn_reads.setdefault(attr, node)
            if len(torn_reads) >= 2 and cls is not None:  # RPR104
                first = min(torn_reads.values(), key=lambda n: n.lineno)
                attrs = ", ".join(sorted(torn_reads))
                self.findings.append(Finding(
                    rule="RPR104",
                    path=fn.module.path,
                    line=first.lineno,
                    col=first.col_offset + 1,
                    message=(
                        f"torn snapshot in {cls.name}.{fn.name}: reads {attrs} "
                        f"without the lock that guards their writes; copy them "
                        f"under the lock first"
                    ),
                    snippet=fn.module.line_at(first.lineno),
                ))
        return self.findings
