"""RPR105 — seed-provenance taint analysis.

Every npz the jobs layer manifests should be derivable from an explicit
seed; an artifact computed from an *unseeded* RNG stream is
unreproducible by construction.  This analysis tracks RNG taint from
sources to artifact sinks, across module boundaries:

* **unseeded sources** — ``np.random.default_rng()`` with no argument,
  ``np.random.RandomState()`` with no argument, and legacy module-level
  draws (``np.random.normal(...)``, ``np.random.rand(...)``, ...);
* **seeded sources** — ``default_rng(seed)``, ``RandomState(seed)``, and
  the project's own :func:`repro.utils.rng.as_generator` /
  ``fallback_rng`` / ``spawn_rngs`` (``as_generator(None)`` falls back
  to ``DEFAULT_SEED``, so even the None path is deterministic);
* **sinks** — :func:`repro.utils.artifacts.atomic_write_npz`,
  ``data.io.save_samples``, ``core.zoo.save_model``, and raw
  ``np.savez*`` calls.

Taint propagates through arithmetic, through method calls on a tainted
generator (``rng.normal(...)`` is as tainted as ``rng``), and through
project-function calls (the callee is re-interpreted with the caller's
taint bound to its parameters, memoised per taint signature).
Parameters are assumed clean at the top level — the finding lands on
whichever caller actually feeds an unseeded stream into a sink path.
Each sink call site also contributes a row to the provenance table the
CLI publishes in JSON output: ``seeded`` / ``unseeded`` / ``unknown``.
"""

from __future__ import annotations

import ast

from ..checks.findings import Finding
from .project import FunctionInfo, Project, _dotted

__all__ = ["SeedTaintAnalysis"]

CLEAN = 0      # no RNG involvement proven
SEEDED = 1     # derived from an explicitly seeded stream
UNSEEDED = 2   # derived from an unseeded stream

_SEEDED_FACTORIES = {
    "repro.utils.rng.as_generator", "repro.utils.rng.fallback_rng",
    "repro.utils.rng.spawn_rngs",
}
_SEEDED_TAILS = {"as_generator", "fallback_rng", "spawn_rngs"}
_RNG_FACTORY_TAILS = {"default_rng", "RandomState", "Generator", "PCG64",
                      "SeedSequence", "Philox", "SFC64"}
_LEGACY_DRAWS = {
    "rand", "randn", "random", "normal", "uniform", "randint", "choice",
    "permutation", "standard_normal", "random_sample", "shuffle",
    "exponential", "poisson", "beta", "gamma",
}
_SINK_QUALS = {
    "repro.utils.artifacts.atomic_write_npz",
    "repro.data.io.save_samples",
    "repro.core.zoo.save_model",
}
_SINK_TAILS = {"atomic_write_npz", "save_samples", "save_model",
               "savez", "savez_compressed"}
_MAX_DEPTH = 8


class SeedTaintAnalysis:
    def __init__(self, project: Project, max_depth: int = _MAX_DEPTH):
        self.project = project
        self.max_depth = max_depth
        self.findings: list[Finding] = []
        self.provenance: dict[tuple[str, int], dict] = {}
        self._memo: dict[tuple, int] = {}
        self._stack: set[tuple] = set()
        self._reported: set[tuple] = set()

    # -- public --------------------------------------------------------
    def run(self) -> list[Finding]:
        for fn in list(self.project.iter_functions()):
            self._interp(fn, {}, depth=0)
        return self.findings

    def provenance_rows(self) -> list[dict]:
        return [self.provenance[key] for key in sorted(self.provenance)]

    # -- classification ------------------------------------------------
    def _is_np_random(self, fn: FunctionInfo, node: ast.expr) -> bool:
        name = _dotted(node) or ""
        if ".random." in f".{name}." or name.startswith("random."):
            head = name.split(".")[0]
            target = fn.module.imports.get(head, head)
            return target in ("numpy", "np") or head in ("np", "numpy")
        return False

    def _source_taint(self, fn: FunctionInfo, call: ast.Call,
                      qual: str | None, tail: str) -> int | None:
        """Taint when ``call`` is an RNG source, else None."""
        if qual in _SEEDED_FACTORIES or tail in _SEEDED_TAILS:
            return SEEDED
        if tail in _RNG_FACTORY_TAILS:
            seeded = bool(call.args) or any(
                kw.arg in ("seed", "key") for kw in call.keywords)
            return SEEDED if seeded else UNSEEDED
        if tail in _LEGACY_DRAWS and self._is_np_random(fn, call.func):
            return UNSEEDED  # np.random.normal(...): hidden global stream
        return None

    def _is_sink(self, qual: str | None, tail: str) -> bool:
        return qual in _SINK_QUALS or tail in _SINK_TAILS

    # -- findings ------------------------------------------------------
    def _record_sink(self, fn: FunctionInfo, call: ast.Call, tail: str,
                     taint: int, origin: tuple | None) -> None:
        key = (fn.module.path, call.lineno)
        status = {CLEAN: "unknown", SEEDED: "seeded", UNSEEDED: "unseeded"}[taint]
        row = self.provenance.get(key)
        if row is None or taint > {"unknown": CLEAN, "seeded": SEEDED,
                                   "unseeded": UNSEEDED}[row["status"]]:
            self.provenance[key] = {
                "sink": tail, "path": fn.module.path, "line": call.lineno,
                "status": status,
                "source": (f"{origin[0]}:{origin[1]}" if origin else None),
            }
        if taint != UNSEEDED or fn.module.zone == "test":
            return
        rkey = ("RPR105", fn.module.path, call.lineno)
        if rkey in self._reported:
            return
        self._reported.add(rkey)
        where = f" (stream created at {origin[0]}:{origin[1]})" if origin else ""
        self.findings.append(Finding(
            rule="RPR105",
            path=fn.module.path,
            line=call.lineno,
            col=call.col_offset + 1,
            message=(
                f"artifact write {tail}() receives data derived from an "
                f"unseeded RNG stream{where}; thread an explicit seed "
                f"(as_generator/default_rng(seed)) so the artifact is "
                f"reproducible"
            ),
            snippet=fn.module.line_at(call.lineno),
        ))

    # -- interpretation ------------------------------------------------
    def _interp(self, fn: FunctionInfo, bindings: dict[str, tuple], depth: int) -> tuple:
        """Returns the (taint, origin) of ``fn``'s return value."""
        key = (fn.qual, tuple(sorted(bindings.items())))
        if key in self._memo:
            return self._memo[key]
        if key in self._stack or depth > self.max_depth:
            return (CLEAN, None)
        self._stack.add(key)
        env: dict[str, tuple] = dict(bindings)
        returns: list[tuple] = []
        try:
            self._exec_block(fn, fn.node.body, env, returns, depth)
        finally:
            self._stack.discard(key)
        result = (CLEAN, None)
        for taint in returns:
            if taint[0] > result[0]:
                result = taint
        self._memo[key] = result
        return result

    def _exec_block(self, fn, stmts, env, returns, depth) -> None:
        for stmt in stmts:
            self._exec_stmt(fn, stmt, env, returns, depth)

    def _exec_stmt(self, fn, stmt, env, returns, depth) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._eval(fn, stmt.value, env, depth)
            for target in stmt.targets:
                self._bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(fn, stmt.value, env, depth), env)
        elif isinstance(stmt, ast.AugAssign):
            left = self._lookup(stmt.target, env)
            right = self._eval(fn, stmt.value, env, depth)
            self._bind(stmt.target, max(left, right, key=lambda t: t[0]), env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                returns.append(self._eval(fn, stmt.value, env, depth))
        elif isinstance(stmt, ast.Expr):
            self._eval(fn, stmt.value, env, depth)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(fn, stmt.test, env, depth)
            self._exec_block(fn, stmt.body, env, returns, depth)
            self._exec_block(fn, stmt.orelse, env, returns, depth)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._eval(fn, stmt.iter, env, depth)
            self._bind(stmt.target, taint, env)  # iterating spawn_rngs etc.
            self._exec_block(fn, stmt.body, env, returns, depth)
            self._exec_block(fn, stmt.orelse, env, returns, depth)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(fn, item.context_expr, env, depth)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, env)
            self._exec_block(fn, stmt.body, env, returns, depth)
        elif isinstance(stmt, ast.Try):
            self._exec_block(fn, stmt.body, env, returns, depth)
            for handler in stmt.handlers:
                self._exec_block(fn, handler.body, env, returns, depth)
            self._exec_block(fn, stmt.orelse, env, returns, depth)
            self._exec_block(fn, stmt.finalbody, env, returns, depth)

    def _bind(self, target, taint: tuple, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, ast.Attribute):
            name = _dotted(target)
            if name and name.startswith("self."):
                env[name] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, env)

    def _lookup(self, node, env) -> tuple:
        if isinstance(node, ast.Name):
            return env.get(node.id, (CLEAN, None))
        if isinstance(node, ast.Attribute):
            name = _dotted(node)
            if name and name in env:
                return env[name]
        return (CLEAN, None)

    def _eval(self, fn, node, env, depth) -> tuple:
        if isinstance(node, (ast.Name, ast.Attribute)):
            found = self._lookup(node, env)
            if found[0] != CLEAN:
                return found
            if isinstance(node, ast.Attribute):
                return self._eval(fn, node.value, env, depth)
            return found
        if isinstance(node, ast.Call):
            return self._eval_call(fn, node, env, depth)
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare, ast.IfExp,
                             ast.Tuple, ast.List, ast.Set, ast.Starred,
                             ast.UnaryOp, ast.Subscript, ast.JoinedStr)):
            worst = (CLEAN, None)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.expr, ast.keyword)):
                    expr = child.value if isinstance(child, ast.keyword) else child
                    taint = self._eval(fn, expr, env, depth)
                    if taint[0] > worst[0]:
                        worst = taint
            return worst
        if isinstance(node, ast.Dict):
            worst = (CLEAN, None)
            for value in node.values:
                if value is None:
                    continue
                taint = self._eval(fn, value, env, depth)
                if taint[0] > worst[0]:
                    worst = taint
            return worst
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(env)
            for gen in node.generators:
                self._bind(gen.target, self._eval(fn, gen.iter, inner, depth), inner)
            if isinstance(node, ast.DictComp):
                return self._eval(fn, node.value, inner, depth)
            return self._eval(fn, node.elt, inner, depth)
        return (CLEAN, None)

    def _eval_call(self, fn, call: ast.Call, env, depth) -> tuple:
        arg_taints = [self._eval(fn, a, env, depth) for a in call.args]
        kw_taints = {kw.arg: self._eval(fn, kw.value, env, depth)
                     for kw in call.keywords if kw.arg}
        worst = (CLEAN, None)
        for taint in list(arg_taints) + list(kw_taints.values()):
            if taint[0] > worst[0]:
                worst = taint

        name = _dotted(call.func) or ""
        tail = name.split(".")[-1]
        cls = self.project.class_of(fn)
        qual = self.project.canonical(self.project.resolve_call(fn.module, call.func, cls))

        # RNG sources override argument taint.
        source = self._source_taint(fn, call, qual, tail)
        if source is not None:
            origin = (fn.module.path, call.lineno) if source == UNSEEDED else None
            return (source, origin)

        # Method call on a tainted receiver: rng.normal(...) etc.
        if isinstance(call.func, ast.Attribute):
            recv = self._eval(fn, call.func.value, env, depth)
            if recv[0] > worst[0]:
                worst = recv

        # Sinks: report and record provenance.
        if self._is_sink(qual, tail):
            self._record_sink(fn, call, tail, worst[0], worst[1])

        # Project functions: propagate taint into the callee.
        target = self.project.function_for_qual(qual)
        if target is not None and target.node is not fn.node \
                and qual not in self.project.classes:
            params = [p for p in target.params if p != "self"]
            bindings: dict[str, tuple] = {}
            for i, taint in enumerate(arg_taints):
                if taint[0] != CLEAN and i < len(params):
                    bindings[params[i]] = taint
            for kw_name, taint in kw_taints.items():
                if taint[0] != CLEAN and kw_name in params:
                    bindings[kw_name] = taint
            if bindings:
                result = self._interp(target, bindings, depth + 1)
                if result[0] > worst[0]:
                    worst = result
        return worst
