"""RPR101/RPR102 — interprocedural dtype and shape inference.

A flow-sensitive abstract interpreter over the numpy/tensor DSL.  Values
carry an abstract dtype drawn from the lattice::

    any
     ├── f32  f64  c64  c128  int  bool
     └── weak           (python scalar literals, NEP-50 weak scalars)

plus an optional concrete shape tuple and an *origin* (module, line)
recording where a float32 value was established.  Every project function
is interpreted once with unconstrained parameters; calls into other
project functions recurse with the caller's abstract arguments
(memoised per dtype/origin signature), so a float32 array created in
module A is still known to be float32 when module B's callee runs it
through ``np.fft`` two calls later — the cross-module widening RPR001
cannot see.

Findings:

* **RPR101** — a value statically known float32/complex64 is *implicitly*
  widened (``np.fft`` promotion, mixed f32×f64 arithmetic) in a module
  different from the one that established the narrow dtype.  Explicit
  widening (``astype``, ``np.float64(...)``, ``dtype=`` kwargs) is
  intentional and never flagged; solver-zone sites (``ns``/``ns3d``/
  ``lbm``) are float64 by design and exempt.
* **RPR102** — two operands with fully-concrete inferred shapes meet an
  elementwise op they cannot broadcast under, or a matmul with
  mismatched inner dimensions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..checks.findings import Finding
from .project import FunctionInfo, Project, _dotted

__all__ = ["DtypeShapeAnalysis", "Abstract"]

ANY = "any"
WEAK = "weak"

_WIDE_OF = {"f32": "f64", "c64": "c128"}
_COMPLEX_OF = {"f32": "c64", "f64": "c128", "c64": "c64", "c128": "c128"}
_REAL_OF = {"c64": "f32", "c128": "f64", "f32": "f32", "f64": "f64"}

# numpy dtype spellings -> abstract dtype
_DTYPE_NAMES = {
    "float32": "f32", "float64": "f64", "single": "f32", "double": "f64",
    "complex64": "c64", "complex128": "c128",
    "int8": "int", "int16": "int", "int32": "int", "int64": "int",
    "uint8": "int", "uint32": "int", "uint64": "int", "intp": "int",
    "bool_": "bool", "bool": "bool", "float_": "f64",
}

_NP_FFT_FORWARD = {"fft", "fft2", "fftn", "rfft", "rfft2", "rfftn", "hfft", "ihfft"}
_NP_FFT_INVERSE = {"ifft", "ifft2", "ifftn", "irfft", "irfft2", "irfftn"}
_F64_FACTORIES = {"linspace", "arange", "eye", "meshgrid", "indices", "fromfunction"}
_ARRAY_FACTORIES = {"zeros", "ones", "empty", "full"}
_LIKE_FACTORIES = {"zeros_like", "ones_like", "empty_like", "full_like"}
_PASSTHROUGH_CALLS = {
    "abs", "absolute", "real", "imag", "conj", "conjugate", "copy",
    "ascontiguousarray", "squeeze", "ravel", "flatten", "transpose",
    "sum", "mean", "max", "min", "sqrt", "exp", "log", "tanh", "sin", "cos",
    "clip", "where", "maximum", "minimum", "stack", "concatenate", "pad",
    "roll", "flip", "moveaxis", "swapaxes", "broadcast_to",
}
# Project-DSL wrappers that preserve their first argument's dtype/shape.
_WRAPPER_TAILS = {"Tensor"}

_MAX_DEPTH = 8


@dataclass(frozen=True)
class Abstract:
    """Abstract value: dtype + optional concrete shape + f32 origin."""

    dtype: str = ANY
    shape: tuple | None = None
    origin: tuple | None = None     # (module_name, line) establishing f32/c64

    def with_dtype(self, dtype: str, origin=None) -> "Abstract":
        return Abstract(dtype=dtype, shape=self.shape,
                        origin=origin if origin is not None else
                        (self.origin if dtype in ("f32", "c64") else None))


TOP = Abstract()


def join(a: Abstract, b: Abstract) -> Abstract:
    dtype = a.dtype if a.dtype == b.dtype else ANY
    shape = a.shape if a.shape == b.shape else None
    origin = a.origin if a.origin == b.origin else None
    return Abstract(dtype, shape, origin)


def _broadcastable(s1: tuple, s2: tuple) -> bool:
    for d1, d2 in zip(reversed(s1), reversed(s2)):
        if d1 != d2 and d1 != 1 and d2 != 1:
            return False
    return True


def _promote(a: str, b: str) -> tuple[str, bool]:
    """NEP-50-style promotion; returns (result, implicitly_widened_narrow)."""
    if ANY in (a, b):
        return ANY, False
    if a == WEAK:
        return b, False
    if b == WEAK:
        return a, False
    if a == b:
        return a, False
    pair = {a, b}
    if pair == {"f32", "f64"}:
        return "f64", True
    if pair == {"f32", "c64"}:
        return "c64", False
    if pair == {"f32", "c128"} or pair == {"c64", "f64"} or pair == {"c64", "c128"}:
        return "c128", True
    if pair == {"f64", "c128"}:
        return "c128", False
    if "int" in pair or "bool" in pair:
        other = (pair - {"int", "bool"}) or {"int"}
        return next(iter(other)), False
    return ANY, False


class DtypeShapeAnalysis:
    """Run the abstract interpreter over every project function."""

    def __init__(self, project: Project, max_depth: int = _MAX_DEPTH):
        self.project = project
        self.max_depth = max_depth
        self.findings: list[Finding] = []
        self._memo: dict[tuple, Abstract] = {}
        self._stack: set[tuple] = set()
        self._reported: set[tuple] = set()

    # -- public --------------------------------------------------------
    def run(self) -> list[Finding]:
        for fn in list(self.project.iter_functions()):
            self._interp(fn, {}, depth=0)
        return self.findings

    # -- findings ------------------------------------------------------
    def _report_widening(self, fn: FunctionInfo, node: ast.AST,
                         value: Abstract, produced: str, what: str) -> None:
        if value.origin is None:
            return
        origin_module, origin_line = value.origin
        if origin_module == fn.module.name:
            return  # same-module widening is RPR001's per-file territory
        if fn.module.zone in ("solver", "test"):
            return  # float64 by design / test scaffolding
        key = ("RPR101", fn.module.path, getattr(node, "lineno", 0), origin_module)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(
            rule="RPR101",
            path=fn.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=(
                f"{value.dtype} value established in {origin_module}:{origin_line} "
                f"is implicitly widened to {produced} by {what} "
                f"(cross-module; keep the pipeline narrow or widen explicitly "
                f"with astype)"
            ),
            snippet=fn.module.line_at(getattr(node, "lineno", 1)),
        ))

    def _report_shape(self, fn: FunctionInfo, node: ast.AST,
                      s1: tuple, s2: tuple, what: str) -> None:
        if fn.module.zone == "test":
            return
        key = ("RPR102", fn.module.path, getattr(node, "lineno", 0))
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(
            rule="RPR102",
            path=fn.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=f"shape contract violated: {what} with inferred shapes "
                    f"{s1} and {s2}",
            snippet=fn.module.line_at(getattr(node, "lineno", 1)),
        ))

    # -- interpretation ------------------------------------------------
    def _argsig(self, env: dict[str, Abstract]) -> tuple:
        return tuple(sorted(
            (name, v.dtype, v.origin[0] if v.origin else None, v.shape)
            for name, v in env.items()
        ))

    def _interp(self, fn: FunctionInfo, bindings: dict[str, Abstract],
                depth: int) -> Abstract:
        key = (fn.qual, self._argsig(bindings))
        if key in self._memo:
            return self._memo[key]
        if key in self._stack or depth > self.max_depth:
            return TOP
        self._stack.add(key)
        env: dict[str, Abstract] = dict(bindings)
        returns: list[Abstract] = []
        try:
            self._exec_block(fn, fn.node.body, env, returns, depth)
        finally:
            self._stack.discard(key)
        result = returns[0] if returns else TOP
        for other in returns[1:]:
            result = join(result, other)
        self._memo[key] = result
        return result

    def _exec_block(self, fn, stmts, env, returns, depth) -> None:
        for stmt in stmts:
            self._exec_stmt(fn, stmt, env, returns, depth)

    def _exec_stmt(self, fn, stmt, env, returns, depth) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(fn, stmt.value, env, depth)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(fn, stmt.value, env, depth), env)
        elif isinstance(stmt, ast.AugAssign):
            left = self._lookup(stmt.target, env)
            right = self._eval(fn, stmt.value, env, depth)
            result = self._binop_result(fn, stmt, left, right)
            self._bind(stmt.target, result, env)
        elif isinstance(stmt, ast.Return):
            returns.append(self._eval(fn, stmt.value, env, depth)
                           if stmt.value is not None else TOP)
        elif isinstance(stmt, ast.Expr):
            self._eval(fn, stmt.value, env, depth)
        elif isinstance(stmt, ast.If):
            self._eval(fn, stmt.test, env, depth)
            env_true, env_false = dict(env), dict(env)
            self._exec_block(fn, stmt.body, env_true, returns, depth)
            self._exec_block(fn, stmt.orelse, env_false, returns, depth)
            self._join_into(env, env_true, env_false)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(fn, stmt.iter, env, depth)
            self._bind(stmt.target, TOP, env)
            body_env = dict(env)
            self._exec_block(fn, stmt.body, body_env, returns, depth)
            self._exec_block(fn, stmt.orelse, body_env, returns, depth)
            self._join_into(env, env, body_env)
        elif isinstance(stmt, ast.While):
            self._eval(fn, stmt.test, env, depth)
            body_env = dict(env)
            self._exec_block(fn, stmt.body, body_env, returns, depth)
            self._join_into(env, env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(fn, item.context_expr, env, depth)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            self._exec_block(fn, stmt.body, env, returns, depth)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(fn, stmt.body, body_env, returns, depth)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(fn, handler.body, handler_env, returns, depth)
                self._join_into(body_env, body_env, handler_env)
            self._exec_block(fn, stmt.orelse, body_env, returns, depth)
            self._exec_block(fn, stmt.finalbody, body_env, returns, depth)
            env.clear()
            env.update(body_env)
        # class/function defs, imports, pass, raise, etc.: no dataflow

    @staticmethod
    def _join_into(env, a, b) -> None:
        merged = {}
        for name in set(a) | set(b):
            merged[name] = join(a.get(name, TOP), b.get(name, TOP))
        env.clear()
        env.update(merged)

    def _bind(self, target, value: Abstract, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            name = _dotted(target)
            if name and name.startswith("self."):
                env[name] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, TOP, env)

    def _lookup(self, node, env) -> Abstract:
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Attribute):
            name = _dotted(node)
            if name and name in env:
                return env[name]
        return TOP

    # -- expressions ---------------------------------------------------
    def _eval(self, fn, node, env, depth) -> Abstract:
        if isinstance(node, ast.Name):
            return env.get(node.id, TOP)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, complex, bool)):
                return Abstract(WEAK)
            return TOP
        if isinstance(node, ast.Attribute):
            name = _dotted(node)
            if name and name in env:
                return env[name]
            if isinstance(node.value, ast.AST) and node.attr in ("T", "real", "imag"):
                base = self._eval(fn, node.value, env, depth)
                if node.attr == "T" and base.shape is not None:
                    return Abstract(base.dtype, tuple(reversed(base.shape)), base.origin)
                if node.attr in ("real", "imag"):
                    return base.with_dtype(_REAL_OF.get(base.dtype, base.dtype))
                return base
            return TOP
        if isinstance(node, ast.BinOp):
            left = self._eval(fn, node.left, env, depth)
            right = self._eval(fn, node.right, env, depth)
            return self._binop_result(fn, node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(fn, node.operand, env, depth)
        if isinstance(node, ast.Call):
            return self._eval_call(fn, node, env, depth)
        if isinstance(node, ast.Subscript):
            base = self._eval(fn, node.value, env, depth)
            return Abstract(base.dtype, None, base.origin)
        if isinstance(node, ast.IfExp):
            return join(self._eval(fn, node.body, env, depth),
                        self._eval(fn, node.orelse, env, depth))
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._eval(fn, elt, env, depth)
            return TOP
        if isinstance(node, ast.Compare):
            self._eval(fn, node.left, env, depth)
            for comp in node.comparators:
                self._eval(fn, comp, env, depth)
            return Abstract("bool")
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(fn, value, env, depth)
            return TOP
        return TOP

    def _binop_result(self, fn, node, left: Abstract, right: Abstract) -> Abstract:
        op = getattr(node, "op", None)
        if isinstance(op, ast.MatMult):
            if (left.shape is not None and right.shape is not None
                    and len(left.shape) >= 2 and len(right.shape) >= 2
                    and left.shape[-1] != right.shape[-2]):
                self._report_shape(fn, node, left.shape, right.shape,
                                   "matmul inner dimensions differ")
            dtype, widened = _promote(left.dtype, right.dtype)
            if widened:
                narrow = left if left.dtype in ("f32", "c64") else right
                self._report_widening(fn, node, narrow, dtype, "matmul promotion")
            return Abstract(dtype, None,
                            left.origin if dtype in ("f32", "c64") else None)
        if (left.shape is not None and right.shape is not None
                and not _broadcastable(left.shape, right.shape)):
            self._report_shape(fn, node, left.shape, right.shape,
                               "elementwise op on non-broadcastable operands")
        dtype, widened = _promote(left.dtype, right.dtype)
        if widened:
            narrow = left if left.dtype in ("f32", "c64") else right
            self._report_widening(fn, node, narrow, dtype, "mixed-precision arithmetic")
        shape = left.shape if left.shape == right.shape else None
        origin = (left.origin or right.origin) if dtype in ("f32", "c64") else None
        return Abstract(dtype, shape, origin)

    # -- calls ---------------------------------------------------------
    def _dtype_const(self, fn, node) -> str | None:
        """``np.float32`` / ``"float32"``-style dtype expression -> abstract dtype."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_NAMES.get(node.value)
        name = _dotted(node)
        if name:
            return _DTYPE_NAMES.get(name.split(".")[-1])
        return None

    def _const_shape(self, node) -> tuple | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return (node.value,)
        if isinstance(node, (ast.Tuple, ast.List)):
            dims = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                    dims.append(elt.value)
                else:
                    return None
            return tuple(dims)
        return None

    def _eval_call(self, fn, node: ast.Call, env, depth) -> Abstract:
        args = [self._eval(fn, a, env, depth) for a in node.args
                if not isinstance(a, ast.Starred)]
        kwargs = {kw.arg: self._eval(fn, kw.value, env, depth)
                  for kw in node.keywords if kw.arg}
        name = _dotted(node.func) or ""
        tail = name.split(".")[-1]
        cls = self.project.class_of(fn)
        qual = self.project.canonical(self.project.resolve_call(fn.module, node.func, cls))

        dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
        explicit = self._dtype_const(fn, dtype_kw)

        # -- numpy/scipy table -----------------------------------------
        if qual and (qual.startswith("numpy.") or qual.startswith("scipy.")) or \
                name.startswith(("np.", "numpy.", "scipy.", "sfft.", "fft.")):
            base = qual or name
            is_scipy = "scipy" in base or base.startswith(("sfft.", "fft."))
            if tail in _NP_FFT_FORWARD or tail in _NP_FFT_INVERSE:
                arg = args[0] if args else TOP
                if is_scipy:
                    table = _COMPLEX_OF if tail in _NP_FFT_FORWARD else _REAL_OF
                    out = table.get(arg.dtype, ANY)
                    return Abstract(out, None, arg.origin if out in ("f32", "c64") else None)
                out = "c128" if tail in _NP_FFT_FORWARD else "f64"
                if arg.dtype in ("f32", "c64"):
                    self._report_widening(fn, node, arg, out, f"np.fft.{tail} promotion")
                return Abstract(out, None)
            if tail in _ARRAY_FACTORIES:
                shape = self._const_shape(node.args[0]) if node.args else None
                dtype = explicit or "f64"
                origin = ((fn.module.name, node.lineno)
                          if dtype in ("f32", "c64") else None)
                return Abstract(dtype, shape, origin)
            if tail in _LIKE_FACTORIES:
                arg = args[0] if args else TOP
                dtype = explicit or arg.dtype
                return Abstract(dtype, arg.shape,
                                arg.origin if dtype in ("f32", "c64") else None)
            if tail in _F64_FACTORIES:
                return Abstract(explicit or "f64")
            if tail in ("asarray", "array", "ascontiguousarray", "copy"):
                arg = args[0] if args else TOP
                if explicit:
                    origin = ((fn.module.name, node.lineno)
                              if explicit in ("f32", "c64") else None)
                    return Abstract(explicit, arg.shape, origin)
                return arg
            if tail in _DTYPE_NAMES:  # np.float32(x) scalar/array cast
                dtype = _DTYPE_NAMES[tail]
                origin = ((fn.module.name, node.lineno)
                          if dtype in ("f32", "c64") else None)
                return Abstract(dtype, args[0].shape if args else None, origin)
            if tail in ("matmul", "dot", "einsum", "tensordot"):
                dtype = ANY
                if len(args) >= 2:
                    dtype, widened = _promote(args[-2].dtype, args[-1].dtype)
                    if widened:
                        narrow = args[-2] if args[-2].dtype in ("f32", "c64") else args[-1]
                        self._report_widening(fn, node, narrow, dtype,
                                              f"np.{tail} promotion")
                return Abstract(dtype)
            if tail in _PASSTHROUGH_CALLS:
                arg = args[0] if args else TOP
                return Abstract(arg.dtype, None, arg.origin)
            return TOP

        # -- methods on abstract values --------------------------------
        if isinstance(node.func, ast.Attribute):
            recv = self._eval(fn, node.func.value, env, depth)
            method = node.func.attr
            if method == "astype":
                cast = explicit or (self._dtype_const(fn, node.args[0])
                                    if node.args else None)
                if cast:
                    origin = ((fn.module.name, node.lineno)
                              if cast in ("f32", "c64") else None)
                    return Abstract(cast, recv.shape, origin)
                return TOP
            if method == "reshape":
                shape = None
                if len(node.args) == 1:
                    shape = self._const_shape(node.args[0])
                elif node.args:
                    shape = self._const_shape(ast.Tuple(elts=list(node.args)))
                return Abstract(recv.dtype, shape, recv.origin)
            if method in ("numpy", "copy", "detach", "contiguous"):
                return recv
            if method in _PASSTHROUGH_CALLS:
                return Abstract(recv.dtype, None, recv.origin)

        # -- DSL wrappers ----------------------------------------------
        if tail in _WRAPPER_TAILS and args:
            return args[0]

        # -- project functions: recurse --------------------------------
        target = self.project.function_for_qual(qual)
        if target is not None and target.node is not fn.node:
            if qual in self.project.classes:
                return TOP  # constructor: instance value, not an array
            bindings: dict[str, Abstract] = {}
            params = [p for p in target.params if p != "self"]
            for i, value in enumerate(args):
                if i < len(params):
                    bindings[params[i]] = value
            for kw_name, value in kwargs.items():
                if kw_name in params:
                    bindings[kw_name] = value
            # Drop uninformative bindings so call sites with unknown
            # args share one memo entry per callee.
            bindings = {k: v for k, v in bindings.items()
                        if v.dtype != ANY or v.shape is not None}
            return self._interp(target, bindings, depth + 1)
        return TOP
